//! Constellation mapping and soft demapping.
//!
//! Gray-coded BPSK, QPSK, 16-QAM and 64-QAM exactly as in 802.11a/g
//! (§18.3.5.8 of the standard), normalised so every constellation has unit
//! average energy. The soft demapper produces max-log LLRs per coded bit for
//! the Viterbi decoder; its sign convention is **positive = bit 0**.

use jmb_dsp::Complex64;

/// Flat constellation lookup shared by the batched demap path: points in
/// label order (the order [`Modulation::constellation`] yields) plus, per
/// bit position, a mask over point indices whose label has that bit set.
/// Built once per modulation and cached for the life of the process.
struct ConstTable {
    pts: Vec<Complex64>,
    bit1: [u64; 6],
}

/// A constellation used by JMB (the paper's §10a list: "BPSK, 4QAM, 16QAM,
/// and 64QAM").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modulation {
    /// Binary phase-shift keying, 1 bit/subcarrier.
    Bpsk,
    /// Quadrature PSK (4-QAM), 2 bits/subcarrier.
    Qpsk,
    /// 16-QAM, 4 bits/subcarrier.
    Qam16,
    /// 64-QAM, 6 bits/subcarrier.
    Qam64,
}

impl Modulation {
    /// Bits carried per constellation symbol.
    #[inline]
    pub fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    /// Normalisation factor `K_MOD` so that average symbol energy is 1.
    #[inline]
    pub fn kmod(self) -> f64 {
        match self {
            Modulation::Bpsk => 1.0,
            Modulation::Qpsk => 1.0 / 2f64.sqrt(),
            Modulation::Qam16 => 1.0 / 10f64.sqrt(),
            Modulation::Qam64 => 1.0 / 42f64.sqrt(),
        }
    }

    /// Gray-maps one PAM axis: `bits` (MSB first) → odd integer level.
    ///
    /// 802.11 Gray mapping per axis:
    /// * 1 bit: 0→−1, 1→+1
    /// * 2 bits: 00→−3, 01→−1, 11→+1, 10→+3
    /// * 3 bits: 000→−7, 001→−5, 011→−3, 010→−1, 110→+1, 111→+3, 101→+5, 100→+7
    fn gray_axis(bits: &[u8]) -> f64 {
        match bits.len() {
            1 => [-1.0, 1.0][bits[0] as usize],
            2 => {
                let idx = (bits[0] << 1 | bits[1]) as usize;
                [-3.0, -1.0, 3.0, 1.0][idx]
            }
            3 => {
                let idx = (bits[0] << 2 | bits[1] << 1 | bits[2]) as usize;
                [-7.0, -5.0, -1.0, -3.0, 7.0, 5.0, 1.0, 3.0][idx]
            }
            // jmb-allow(no-panic-hot-path): axis widths are 1-3 bits (BPSK..64-QAM) — the Mcs table admits no other constellation
            n => unreachable!("axis width {n}"),
        }
    }

    /// Maps `bits_per_symbol` bits (values 0/1, I bits first then Q bits, as
    /// in 802.11) to one constellation point.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != self.bits_per_symbol()`.
    pub fn map(self, bits: &[u8]) -> Complex64 {
        // jmb-allow(no-panic-hot-path): documented precondition (# Panics) — bits per symbol is part of the API contract
        assert_eq!(
            bits.len(),
            self.bits_per_symbol(),
            "{self:?} needs {} bits",
            self.bits_per_symbol()
        );
        debug_assert!(bits.iter().all(|&b| b <= 1));
        let k = self.kmod();
        match self {
            Modulation::Bpsk => Complex64::new(Self::gray_axis(&bits[..1]), 0.0) * k,
            Modulation::Qpsk => {
                Complex64::new(Self::gray_axis(&bits[..1]), Self::gray_axis(&bits[1..2])) * k
            }
            Modulation::Qam16 => {
                Complex64::new(Self::gray_axis(&bits[..2]), Self::gray_axis(&bits[2..4])) * k
            }
            Modulation::Qam64 => {
                Complex64::new(Self::gray_axis(&bits[..3]), Self::gray_axis(&bits[3..6])) * k
            }
        }
    }

    /// Maps a bit stream to a symbol stream.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` is not a multiple of `bits_per_symbol()`.
    pub fn map_stream(self, bits: &[u8]) -> Vec<Complex64> {
        let bps = self.bits_per_symbol();
        // jmb-allow(no-panic-hot-path): documented precondition (# Panics) — bit streams are produced whole-symbol by the encoder
        assert_eq!(
            bits.len() % bps,
            0,
            "bit stream not a whole number of symbols"
        );
        bits.chunks(bps).map(|c| self.map(c)).collect()
    }

    /// All constellation points with their bit labels, for exact demapping.
    pub fn constellation(self) -> Vec<(Complex64, Vec<u8>)> {
        let bps = self.bits_per_symbol();
        (0..(1usize << bps))
            .map(|v| {
                let bits: Vec<u8> = (0..bps).map(|i| ((v >> (bps - 1 - i)) & 1) as u8).collect();
                (self.map(&bits), bits)
            })
            .collect()
    }

    /// Hard demap: nearest constellation point's bits.
    pub fn demap_hard(self, y: Complex64) -> Vec<u8> {
        self.constellation()
            .into_iter()
            // total_cmp: a NaN distance (a NaN sample from equalising a
            // spectral null) must demap to some point and fail CRC, not
            // panic the decode path.
            .min_by(|(a, _), (b, _)| (*a - y).norm_sqr().total_cmp(&(*b - y).norm_sqr()))
            .map(|(_, bits)| bits)
            // jmb-allow(no-panic-hot-path): constellation() yields 2^bits_per_symbol points — never empty for any Modulation variant
            .expect("non-empty constellation")
    }

    /// Max-log LLRs for each bit of one received symbol.
    ///
    /// `noise_var` is the complex noise variance (E[|n|²]) after
    /// equalisation; `csi` scales confidence (use the post-equalisation
    /// channel gain so weak subcarriers contribute weak LLRs).
    ///
    /// Sign convention: positive LLR ⇒ bit 0 more likely, matching
    /// [`crate::viterbi::decode`].
    pub fn demap_soft(self, y: Complex64, noise_var: f64, csi: f64) -> Vec<f64> {
        let bps = self.bits_per_symbol();
        let pts = self.constellation();
        let nv = noise_var.max(1e-12);
        let mut llrs = Vec::with_capacity(bps);
        for bit in 0..bps {
            let mut d0 = f64::INFINITY; // best (smallest) distance with bit=0
            let mut d1 = f64::INFINITY;
            for (s, bits) in &pts {
                let d = (y - *s).norm_sqr();
                if bits[bit] == 0 {
                    d0 = d0.min(d);
                } else {
                    d1 = d1.min(d);
                }
            }
            // log P(0)/P(1) ≈ (d1 − d0)/σ², scaled by CSI weight.
            llrs.push((d1 - d0) / nv * csi);
        }
        llrs
    }

    /// Soft-demaps a symbol stream into one flat LLR vector.
    pub fn demap_soft_stream(self, ys: &[Complex64], noise_var: f64, csi: &[f64]) -> Vec<f64> {
        // jmb-allow(no-panic-hot-path): documented precondition — one CSI weight per symbol, produced by the same channel estimate
        assert_eq!(ys.len(), csi.len(), "per-symbol CSI required");
        let mut out = Vec::with_capacity(ys.len() * self.bits_per_symbol());
        for (y, &w) in ys.iter().zip(csi) {
            out.extend(self.demap_soft(*y, noise_var, w));
        }
        out
    }

    fn table(self) -> &'static ConstTable {
        use std::sync::OnceLock;
        static TABLES: [OnceLock<ConstTable>; 4] = [
            OnceLock::new(),
            OnceLock::new(),
            OnceLock::new(),
            OnceLock::new(),
        ];
        let idx = match self {
            Modulation::Bpsk => 0,
            Modulation::Qpsk => 1,
            Modulation::Qam16 => 2,
            Modulation::Qam64 => 3,
        };
        TABLES[idx].get_or_init(|| {
            let mut pts = Vec::new();
            let mut bit1 = [0u64; 6];
            for (i, (p, bits)) in self.constellation().into_iter().enumerate() {
                pts.push(p);
                for (b, &v) in bits.iter().enumerate() {
                    if v == 1 {
                        bit1[b] |= 1 << i;
                    }
                }
            }
            ConstTable { pts, bit1 }
        })
    }

    /// Batched soft demap + EVM for one symbol's equalised subcarriers.
    ///
    /// Appends `bits_per_symbol()` max-log LLRs per received value to `llrs`
    /// and accumulates into `evm_acc` the squared distance from each value
    /// to its nearest constellation point (the EVM numerator). Produces
    /// bitwise the values the scalar [`Modulation::demap_soft_stream`] /
    /// [`Modulation::demap_hard`] pair would — every point distance is
    /// simply computed once per value instead of once per bit — so the
    /// decode chain stays byte-identical whichever path runs.
    pub fn demap_soft_evm_into(
        self,
        ys: &[Complex64],
        noise_var: f64,
        csi: &[f64],
        llrs: &mut Vec<f64>,
        evm_acc: &mut f64,
    ) {
        // jmb-allow(no-panic-hot-path): documented precondition — one CSI weight per symbol, produced by the same channel estimate
        assert_eq!(ys.len(), csi.len(), "per-symbol CSI required");
        let bps = self.bits_per_symbol();
        let t = self.table();
        let n_pts = t.pts.len();
        let nv = noise_var.max(1e-12);
        llrs.reserve(ys.len() * bps);
        let mut dist = [0.0f64; 64];
        for (y, &w) in ys.iter().zip(csi) {
            for (d, s) in dist[..n_pts].iter_mut().zip(&t.pts) {
                *d = (*y - *s).norm_sqr();
            }
            // Nearest point, first-wins on ties and total_cmp NaN ordering —
            // exactly Iterator::min_by as used by demap_hard.
            let mut bi = 0usize;
            for i in 1..n_pts {
                if dist[i].total_cmp(&dist[bi]) == std::cmp::Ordering::Less {
                    bi = i;
                }
            }
            *evm_acc += dist[bi];
            for &mask in &t.bit1[..bps] {
                let mut d0 = f64::INFINITY;
                let mut d1 = f64::INFINITY;
                for (i, &d) in dist[..n_pts].iter().enumerate() {
                    if (mask >> i) & 1 == 1 {
                        d1 = d1.min(d);
                    } else {
                        d0 = d0.min(d);
                    }
                }
                llrs.push((d1 - d0) / nv * w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Modulation; 4] = [
        Modulation::Bpsk,
        Modulation::Qpsk,
        Modulation::Qam16,
        Modulation::Qam64,
    ];

    #[test]
    fn unit_average_energy() {
        for m in ALL {
            let pts = m.constellation();
            let e: f64 = pts.iter().map(|(s, _)| s.norm_sqr()).sum::<f64>() / pts.len() as f64;
            assert!((e - 1.0).abs() < 1e-12, "{m:?} energy {e}");
        }
    }

    #[test]
    fn constellation_sizes() {
        assert_eq!(Modulation::Bpsk.constellation().len(), 2);
        assert_eq!(Modulation::Qpsk.constellation().len(), 4);
        assert_eq!(Modulation::Qam16.constellation().len(), 16);
        assert_eq!(Modulation::Qam64.constellation().len(), 64);
    }

    #[test]
    fn points_distinct() {
        for m in ALL {
            let pts = m.constellation();
            for i in 0..pts.len() {
                for j in i + 1..pts.len() {
                    assert!(
                        (pts[i].0 - pts[j].0).abs() > 1e-9,
                        "{m:?}: duplicate points"
                    );
                }
            }
        }
    }

    #[test]
    fn gray_neighbours_differ_by_one_bit() {
        // Adjacent levels on each axis must differ in exactly one bit —
        // the defining property of Gray mapping.
        for m in [Modulation::Qam16, Modulation::Qam64] {
            let pts = m.constellation();
            for (si, bi) in &pts {
                for (sj, bj) in &pts {
                    let d = (*si - *sj).abs();
                    // Nearest horizontal/vertical neighbour distance:
                    let step = 2.0 * m.kmod();
                    if (d - step).abs() < 1e-9 {
                        let diff: usize = bi.iter().zip(bj).filter(|(a, b)| a != b).count();
                        assert_eq!(diff, 1, "{m:?}: neighbours differ in {diff} bits");
                    }
                }
            }
        }
    }

    #[test]
    fn hard_demap_roundtrip() {
        for m in ALL {
            for (s, bits) in m.constellation() {
                assert_eq!(m.demap_hard(s), bits, "{m:?}");
            }
        }
    }

    #[test]
    fn hard_demap_with_small_noise() {
        for m in ALL {
            // Perturb by less than half the minimum distance.
            let eps = 0.4 * m.kmod();
            for (s, bits) in m.constellation() {
                let y = s + Complex64::new(eps * 0.7, -eps * 0.7);
                assert_eq!(m.demap_hard(y), bits, "{m:?}");
            }
        }
    }

    #[test]
    fn map_stream_roundtrip() {
        let m = Modulation::Qam16;
        let bits: Vec<u8> = (0..64).map(|i| ((i * 7 + 1) % 2) as u8).collect();
        let syms = m.map_stream(&bits);
        assert_eq!(syms.len(), 16);
        let mut recovered = Vec::new();
        for s in syms {
            recovered.extend(m.demap_hard(s));
        }
        assert_eq!(recovered, bits);
    }

    #[test]
    fn soft_llr_signs_match_transmitted_bits() {
        for m in ALL {
            for (s, bits) in m.constellation() {
                let llrs = m.demap_soft(s, 0.1, 1.0);
                for (llr, &bit) in llrs.iter().zip(&bits) {
                    if bit == 0 {
                        assert!(*llr > 0.0, "{m:?}: LLR {llr} for bit 0");
                    } else {
                        assert!(*llr < 0.0, "{m:?}: LLR {llr} for bit 1");
                    }
                }
            }
        }
    }

    #[test]
    fn llr_magnitude_scales_with_noise() {
        let m = Modulation::Qpsk;
        let (s, _) = m.constellation()[0].clone();
        let low_noise = m.demap_soft(s, 0.01, 1.0);
        let high_noise = m.demap_soft(s, 1.0, 1.0);
        assert!(low_noise[0].abs() > high_noise[0].abs() * 10.0);
    }

    #[test]
    fn llr_csi_weighting() {
        let m = Modulation::Bpsk;
        let (s, _) = m.constellation()[0].clone();
        let strong = m.demap_soft(s, 0.1, 2.0);
        let weak = m.demap_soft(s, 0.1, 0.5);
        assert!((strong[0] / weak[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn bpsk_is_real_axis() {
        assert_eq!(Modulation::Bpsk.map(&[0]), Complex64::new(-1.0, 0.0));
        assert_eq!(Modulation::Bpsk.map(&[1]), Complex64::new(1.0, 0.0));
    }

    #[test]
    fn qpsk_standard_mapping() {
        let k = 1.0 / 2f64.sqrt();
        assert_eq!(Modulation::Qpsk.map(&[0, 0]), Complex64::new(-k, -k));
        assert_eq!(Modulation::Qpsk.map(&[1, 1]), Complex64::new(k, k));
        assert_eq!(Modulation::Qpsk.map(&[1, 0]), Complex64::new(k, -k));
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn wrong_bit_count_panics() {
        Modulation::Qam16.map(&[1, 0]);
    }

    #[test]
    fn batched_demap_matches_scalar_bitwise() {
        // The batched path must reproduce the scalar demap_soft_stream and
        // demap_hard-based EVM down to the last bit, including NaN/∞ inputs.
        for m in ALL {
            let mut ys: Vec<Complex64> = (0..40)
                .map(|i| {
                    let a = (i as f64 * 0.37 - 3.0) * m.kmod();
                    let b = (i as f64 * 0.51 - 4.1) * m.kmod();
                    Complex64::new(a, b)
                })
                .collect();
            ys.push(Complex64::new(f64::NAN, 0.3));
            ys.push(Complex64::new(f64::INFINITY, -1.0));
            ys.push(Complex64::ZERO);
            let csi: Vec<f64> = (0..ys.len()).map(|i| 0.1 + 0.05 * i as f64).collect();
            let nv = 0.137;

            let mut llrs = Vec::new();
            let mut evm = 0.0f64;
            m.demap_soft_evm_into(&ys, nv, &csi, &mut llrs, &mut evm);

            let want = m.demap_soft_stream(&ys, nv, &csi);
            assert_eq!(llrs.len(), want.len(), "{m:?}");
            for (i, (a, b)) in llrs.iter().zip(&want).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{m:?} llr {i}: {a} vs {b}");
            }
            let mut evm_ref = 0.0f64;
            for y in &ys {
                let ideal = m.map(&m.demap_hard(*y));
                evm_ref += (*y - ideal).norm_sqr();
            }
            assert_eq!(evm.to_bits(), evm_ref.to_bits(), "{m:?} evm");
        }
    }

    #[test]
    fn demap_soft_stream_shapes() {
        let m = Modulation::Qam64;
        let ys = vec![Complex64::new(0.1, -0.2); 5];
        let csi = vec![1.0; 5];
        let llrs = m.demap_soft_stream(&ys, 0.1, &csi);
        assert_eq!(llrs.len(), 30);
    }
}
