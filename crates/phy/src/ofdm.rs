//! OFDM symbol modulation and demodulation.
//!
//! Maps 48 data-subcarrier values plus 4 pilots onto a 64-point IFFT with a
//! 16-sample cyclic prefix, and the reverse. The per-subcarrier single-tap
//! equalizer lives here too: after JMB's beamforming the effective channel at
//! each client is a diagonal (single-tap) channel per subcarrier (paper
//! Eq. 1/4), so this equalizer is all a client needs.

use crate::params::OfdmParams;
use jmb_dsp::{fft, Complex64, FftPlan};
use std::sync::Arc;

/// Base pilot values before polarity: `P(−21)=1, P(−7)=1, P(+7)=1, P(+21)=−1`.
pub const PILOT_BASE: [f64; 4] = [1.0, 1.0, 1.0, -1.0];

/// One OFDM modem instance (holds a shared cached FFT plan).
#[derive(Debug, Clone)]
pub struct Ofdm {
    params: OfdmParams,
    plan: Arc<FftPlan>,
}

impl Ofdm {
    /// Creates a modem for the given numerology.
    pub fn new(params: OfdmParams) -> Self {
        let plan = fft::plan(params.fft_size);
        Ofdm { params, plan }
    }

    /// The numerology in use.
    pub fn params(&self) -> &OfdmParams {
        &self.params
    }

    /// Modulates one OFDM symbol: 48 data values + pilot polarity →
    /// 80 time-domain samples (CP + body).
    ///
    /// `polarity` is the 802.11 pilot polarity `p_n` (±1) for this symbol.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != 48`.
    pub fn modulate_symbol(&self, data: &[Complex64], polarity: f64) -> Vec<Complex64> {
        let bins = self.assemble_bins(data, polarity);
        self.bins_to_samples(&bins)
    }

    /// Places data and pilots into the 64 FFT bins (frequency domain).
    pub fn assemble_bins(&self, data: &[Complex64], polarity: f64) -> Vec<Complex64> {
        // jmb-allow(no-panic-hot-path): documented precondition — the framer always supplies n_data_subcarriers symbols
        assert_eq!(
            data.len(),
            self.params.n_data_subcarriers(),
            "expected {} data values",
            self.params.n_data_subcarriers()
        );
        let mut bins = vec![Complex64::ZERO; self.params.fft_size];
        for (&k, &v) in self.params.data_subcarriers.iter().zip(data) {
            bins[self.params.bin(k)] = v;
        }
        for (i, &k) in self.params.pilot_subcarriers.iter().enumerate() {
            bins[self.params.bin(k)] = Complex64::real(PILOT_BASE[i] * polarity);
        }
        bins
    }

    /// Converts 64 frequency bins into 80 samples (IFFT + cyclic prefix).
    pub fn bins_to_samples(&self, bins: &[Complex64]) -> Vec<Complex64> {
        // jmb-allow(no-panic-hot-path): caller contract — bins come from assemble_bins of the same numerology
        assert_eq!(bins.len(), self.params.fft_size);
        let mut body = bins.to_vec();
        self.plan.inverse(&mut body);
        let mut out = Vec::with_capacity(self.params.symbol_len());
        out.extend_from_slice(&body[self.params.fft_size - self.params.cp_len..]);
        out.extend_from_slice(&body);
        out
    }

    /// Demodulates one 80-sample symbol into 64 frequency bins
    /// (CP strip + FFT).
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != 80`.
    pub fn demodulate_symbol(&self, samples: &[Complex64]) -> Vec<Complex64> {
        // jmb-allow(no-panic-hot-path): documented precondition (# Panics) — the frame parser slices whole symbols
        assert_eq!(
            samples.len(),
            self.params.symbol_len(),
            "need one full symbol"
        );
        let mut bins = samples[self.params.cp_len..].to_vec();
        self.plan.forward(&mut bins);
        bins
    }

    /// Demodulates one symbol, appending its `fft_size` bins to `out` —
    /// the allocation-free form of [`Ofdm::demodulate_symbol`].
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != 80`.
    pub fn demodulate_symbol_into(&self, samples: &[Complex64], out: &mut Vec<Complex64>) {
        // jmb-allow(no-panic-hot-path): documented precondition (# Panics) — the frame parser slices whole symbols
        assert_eq!(
            samples.len(),
            self.params.symbol_len(),
            "need one full symbol"
        );
        let start = out.len();
        out.extend_from_slice(&samples[self.params.cp_len..]);
        self.plan.forward(&mut out[start..]);
    }

    /// Extracts the 48 data-subcarrier values from 64 bins, in the order of
    /// `params.data_subcarriers`.
    pub fn extract_data(&self, bins: &[Complex64]) -> Vec<Complex64> {
        self.params
            .data_subcarriers
            .iter()
            .map(|&k| bins[self.params.bin(k)])
            .collect()
    }

    /// Extracts the 4 pilot values from 64 bins.
    pub fn extract_pilots(&self, bins: &[Complex64]) -> [Complex64; 4] {
        let mut out = [Complex64::ZERO; 4];
        for (i, &k) in self.params.pilot_subcarriers.iter().enumerate() {
            out[i] = bins[self.params.bin(k)];
        }
        out
    }

    /// Extracts all 52 occupied subcarrier values, ascending subcarrier order.
    pub fn extract_occupied(&self, bins: &[Complex64]) -> Vec<Complex64> {
        self.params
            .occupied_subcarriers()
            .iter()
            .map(|&k| bins[self.params.bin(k)])
            .collect()
    }
}

/// Per-subcarrier single-tap equalizer: `x̂_k = y_k / h_k`.
///
/// `channel` is indexed like the slice being equalized. Subcarriers whose
/// channel estimate is ~zero are zeroed (they carry no usable information and
/// their LLR weight should be ~0 anyway).
pub fn equalize(received: &[Complex64], channel: &[Complex64]) -> Vec<Complex64> {
    let mut out = Vec::new();
    equalize_into(received, channel, &mut out);
    out
}

/// Allocation-free [`equalize`]: clears `out` and fills it with the
/// equalized values (bitwise identical to what [`equalize`] returns).
pub fn equalize_into(received: &[Complex64], channel: &[Complex64], out: &mut Vec<Complex64>) {
    // jmb-allow(no-panic-hot-path): caller contract — symbols and channel gains are sliced from the same estimate
    assert_eq!(received.len(), channel.len(), "equalize: length mismatch");
    out.clear();
    out.extend(received.iter().zip(channel).map(|(&y, &h)| {
        if h.norm_sqr() < 1e-18 {
            Complex64::ZERO
        } else {
            y / h
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulation::Modulation;

    fn modem() -> Ofdm {
        Ofdm::new(OfdmParams::default())
    }

    fn test_data(seed: u64) -> Vec<Complex64> {
        // Deterministic QPSK-ish data.
        (0..48)
            .map(|i| {
                let b0 = ((seed >> (i % 32)) & 1) as u8;
                let b1 = ((seed >> ((i + 7) % 32)) & 1) as u8;
                Modulation::Qpsk.map(&[b0, b1])
            })
            .collect()
    }

    #[test]
    fn symbol_length() {
        let m = modem();
        let s = m.modulate_symbol(&test_data(0xABCD), 1.0);
        assert_eq!(s.len(), 80);
    }

    #[test]
    fn cyclic_prefix_is_tail_copy() {
        let m = modem();
        let s = m.modulate_symbol(&test_data(0x1234), 1.0);
        for i in 0..16 {
            assert!((s[i] - s[64 + i]).abs() < 1e-12, "CP mismatch at {i}");
        }
    }

    #[test]
    fn modulate_demodulate_roundtrip() {
        let m = modem();
        let data = test_data(0xDEAD_BEEF);
        let s = m.modulate_symbol(&data, -1.0);
        let bins = m.demodulate_symbol(&s);
        let got = m.extract_data(&bins);
        for (g, w) in got.iter().zip(&data) {
            assert!((*g - *w).abs() < 1e-10);
        }
        let pilots = m.extract_pilots(&bins);
        for (i, p) in pilots.iter().enumerate() {
            let want = -PILOT_BASE[i];
            assert!((*p - Complex64::real(want)).abs() < 1e-10);
        }
    }

    #[test]
    fn unused_bins_are_empty() {
        let m = modem();
        let bins = m.assemble_bins(&test_data(7), 1.0);
        // DC and guard bins (|k| > 26) must be zero.
        assert_eq!(bins[0], Complex64::ZERO);
        for (k, b) in bins.iter().enumerate().take(38).skip(27) {
            assert_eq!(*b, Complex64::ZERO, "guard bin {k} occupied");
        }
    }

    #[test]
    fn cp_makes_symbol_robust_to_delay() {
        // Demodulating with a timing offset inside the CP only rotates each
        // subcarrier (linear phase) — no inter-symbol interference. This is
        // the property the paper leans on for inter-AP delay spread (§5.2).
        let m = modem();
        let data = test_data(0x5555_AAAA);
        let s = m.modulate_symbol(&data, 1.0);
        // Receiver frame-start estimate 3 samples early (still inside the
        // CP): the FFT window then covers the last 3 CP samples plus the
        // first 61 body samples — a circular shift, i.e. pure rotation.
        let mut early = vec![Complex64::ZERO; 3];
        early.extend_from_slice(&s);
        let bins = m.demodulate_symbol(&early[..80]);
        let got = m.extract_data(&bins);
        for (i, (&k, g)) in m.params().data_subcarriers.iter().zip(&got).enumerate() {
            // Body delayed by 3 samples in the window ⇒ e^{−j2πk·3/64}.
            let rot = Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 * 3.0 / 64.0);
            let want = data[i] * rot;
            assert!((*g - want).abs() < 1e-9, "subcarrier {k}");
        }
    }

    #[test]
    fn equalize_inverts_flat_channel() {
        let m = modem();
        let data = test_data(0xFACE);
        let h = Complex64::from_polar(0.8, 1.1);
        let s = m.modulate_symbol(&data, 1.0);
        let rx: Vec<Complex64> = s.iter().map(|&x| x * h).collect();
        let bins = m.demodulate_symbol(&rx);
        let got = m.extract_data(&bins);
        let ch = vec![h; 48];
        let eq = equalize(&got, &ch);
        for (g, w) in eq.iter().zip(&data) {
            assert!((*g - *w).abs() < 1e-9);
        }
    }

    #[test]
    fn equalize_zero_channel_is_zero() {
        let eq = equalize(&[Complex64::ONE], &[Complex64::ZERO]);
        assert_eq!(eq[0], Complex64::ZERO);
    }

    #[test]
    fn extract_occupied_count() {
        let m = modem();
        let bins = m.assemble_bins(&test_data(3), 1.0);
        assert_eq!(m.extract_occupied(&bins).len(), 52);
    }

    #[test]
    fn average_tx_power_is_52_over_4096() {
        // Unit-energy constellations on 52 of 64 bins with a 1/N IFFT give
        // mean sample power 52/64².
        let m = modem();
        let mut acc = 0.0;
        let n_syms = 50;
        for i in 0..n_syms {
            let s = m.modulate_symbol(&test_data(i as u64 * 997 + 13), 1.0);
            acc += jmb_dsp::complex::mean_power(&s);
        }
        let mean = acc / n_syms as f64;
        let expected = 52.0 / (64.0 * 64.0);
        assert!((mean / expected - 1.0).abs() < 0.15, "mean power {mean}");
    }
}
