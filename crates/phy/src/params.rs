//! OFDM numerology and channel profiles.
//!
//! JMB's two testbeds use the same 64-subcarrier OFDM grid at two clock
//! rates: the USRP2 testbed runs a 10 MHz channel (§10a) and the 802.11n
//! testbed a 20 MHz channel (§10b). Everything else — 48 data subcarriers,
//! 4 pilots at ±7 and ±21, a 16-sample cyclic prefix — is the standard
//! 802.11a/g numerology shared by both.

/// Channel profiles used in the paper's two testbeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelProfile {
    /// 10 MHz channel, as used by the USRP2 software-radio testbed (§10a).
    /// OFDM symbols last 8 µs; data rates are half the 20 MHz rates.
    Usrp10MHz,
    /// 20 MHz channel, as used with off-the-shelf 802.11n clients (§10b).
    /// OFDM symbols last 4 µs; standard 802.11a/g data rates.
    Wifi20MHz,
}

impl ChannelProfile {
    /// Sample rate in samples/second (equal to channel bandwidth).
    pub fn sample_rate(self) -> f64 {
        match self {
            ChannelProfile::Usrp10MHz => 10e6,
            ChannelProfile::Wifi20MHz => 20e6,
        }
    }
}

/// The OFDM numerology used by every JMB transmitter and receiver.
///
/// # Examples
///
/// ```
/// use jmb_phy::{ChannelProfile, OfdmParams};
///
/// let p = OfdmParams::new(ChannelProfile::Usrp10MHz);
/// assert_eq!(p.fft_size, 64);
/// assert_eq!(p.n_data_subcarriers(), 48);
/// assert!((p.symbol_duration() - 8e-6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OfdmParams {
    /// FFT size (64).
    pub fft_size: usize,
    /// Cyclic prefix length in samples (16, i.e. 1.6 µs at 10 MHz / 0.8 µs at
    /// 20 MHz — the "long" 802.11 guard interval the paper relies on to
    /// absorb inter-AP propagation-delay differences, §5.2).
    pub cp_len: usize,
    /// Channel profile (sets the sample rate).
    pub profile: ChannelProfile,
    /// Logical indices of pilot subcarriers.
    pub pilot_subcarriers: [i32; 4],
    /// Logical indices of data subcarriers (sorted ascending), 48 entries.
    pub data_subcarriers: Vec<i32>,
    /// Carrier frequency in Hz (2.4 GHz band, used to scale ppm → Hz).
    pub carrier_freq: f64,
}

impl OfdmParams {
    /// Pilot subcarrier positions per 802.11: −21, −7, +7, +21.
    pub const PILOTS: [i32; 4] = [-21, -7, 7, 21];

    /// Builds the standard numerology for a profile.
    pub fn new(profile: ChannelProfile) -> Self {
        let data_subcarriers = (-26..=26)
            .filter(|&k| k != 0 && !Self::PILOTS.contains(&k))
            .collect::<Vec<i32>>();
        debug_assert_eq!(data_subcarriers.len(), 48);
        OfdmParams {
            fft_size: 64,
            cp_len: 16,
            profile,
            pilot_subcarriers: Self::PILOTS,
            data_subcarriers,
            carrier_freq: 2.437e9, // Wi-Fi channel 6
        }
    }

    /// Number of data subcarriers (48).
    #[inline]
    pub fn n_data_subcarriers(&self) -> usize {
        self.data_subcarriers.len()
    }

    /// All 52 occupied logical subcarrier indices in ascending order
    /// (data + pilots).
    pub fn occupied_subcarriers(&self) -> Vec<i32> {
        let mut v: Vec<i32> = self
            .data_subcarriers
            .iter()
            .chain(self.pilot_subcarriers.iter())
            .copied()
            .collect();
        v.sort_unstable();
        v
    }

    /// Sample rate in Hz.
    #[inline]
    pub fn sample_rate(&self) -> f64 {
        self.profile.sample_rate()
    }

    /// Sample period in seconds.
    #[inline]
    pub fn sample_period(&self) -> f64 {
        1.0 / self.sample_rate()
    }

    /// Samples per OFDM symbol including cyclic prefix (80).
    #[inline]
    pub fn symbol_len(&self) -> usize {
        self.fft_size + self.cp_len
    }

    /// OFDM symbol duration in seconds (4 µs at 20 MHz, 8 µs at 10 MHz).
    #[inline]
    pub fn symbol_duration(&self) -> f64 {
        self.symbol_len() as f64 * self.sample_period()
    }

    /// Subcarrier spacing in Hz (312.5 kHz at 20 MHz).
    #[inline]
    pub fn subcarrier_spacing(&self) -> f64 {
        self.sample_rate() / self.fft_size as f64
    }

    /// Maps a logical subcarrier index (−32..32, 0 = DC) to its FFT bin.
    ///
    /// Negative subcarriers wrap to the top half of the FFT, per the usual
    /// OFDM convention.
    #[inline]
    pub fn bin(&self, subcarrier: i32) -> usize {
        debug_assert!(
            subcarrier > -(self.fft_size as i32 / 2) && subcarrier < self.fft_size as i32 / 2,
            "subcarrier {subcarrier} out of range"
        );
        if subcarrier >= 0 {
            subcarrier as usize
        } else {
            (self.fft_size as i32 + subcarrier) as usize
        }
    }

    /// Converts a ppm frequency tolerance at the carrier into Hz.
    ///
    /// E.g. the 802.11-mandated ±20 ppm at 2.437 GHz is ±48.7 kHz — the CFO
    /// range JMB's sync must handle (§1).
    #[inline]
    pub fn ppm_to_hz(&self, ppm: f64) -> f64 {
        ppm * 1e-6 * self.carrier_freq
    }
}

impl Default for OfdmParams {
    fn default() -> Self {
        OfdmParams::new(ChannelProfile::Usrp10MHz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_numerology() {
        let p = OfdmParams::new(ChannelProfile::Wifi20MHz);
        assert_eq!(p.fft_size, 64);
        assert_eq!(p.cp_len, 16);
        assert_eq!(p.symbol_len(), 80);
        assert_eq!(p.n_data_subcarriers(), 48);
        assert_eq!(p.occupied_subcarriers().len(), 52);
        assert!((p.symbol_duration() - 4e-6).abs() < 1e-15);
        assert!((p.subcarrier_spacing() - 312_500.0).abs() < 1e-9);
    }

    #[test]
    fn usrp_profile_is_half_clock() {
        let p = OfdmParams::new(ChannelProfile::Usrp10MHz);
        assert!((p.symbol_duration() - 8e-6).abs() < 1e-15);
        assert!((p.sample_rate() - 10e6).abs() < 1e-9);
    }

    #[test]
    fn data_subcarriers_exclude_dc_and_pilots() {
        let p = OfdmParams::default();
        assert!(!p.data_subcarriers.contains(&0));
        for pilot in OfdmParams::PILOTS {
            assert!(!p.data_subcarriers.contains(&pilot));
        }
        assert!(p.data_subcarriers.iter().all(|&k| (-26..=26).contains(&k)));
    }

    #[test]
    fn bin_mapping() {
        let p = OfdmParams::default();
        assert_eq!(p.bin(0), 0);
        assert_eq!(p.bin(1), 1);
        assert_eq!(p.bin(26), 26);
        assert_eq!(p.bin(-1), 63);
        assert_eq!(p.bin(-26), 38);
    }

    #[test]
    fn bins_unique_across_occupied() {
        let p = OfdmParams::default();
        let mut bins: Vec<usize> = p.occupied_subcarriers().iter().map(|&k| p.bin(k)).collect();
        bins.sort_unstable();
        bins.dedup();
        assert_eq!(bins.len(), 52);
    }

    #[test]
    fn ppm_conversion() {
        let p = OfdmParams::default();
        let hz = p.ppm_to_hz(20.0);
        assert!((hz - 48_740.0).abs() < 1.0, "20 ppm = {hz} Hz");
    }
}
