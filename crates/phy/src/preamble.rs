//! 802.11 short and long training fields (STF / LTF).
//!
//! The preamble plays three roles in JMB:
//!
//! 1. Packet detection and coarse CFO estimation (STF, a 16-sample-periodic
//!    waveform repeated 10×),
//! 2. fine CFO estimation and channel estimation (LTF, two repeated 64-sample
//!    symbols behind a double-length guard interval),
//! 3. **the sync header** (§5 of the paper): the lead AP's STF+LTF is what
//!    slave APs measure `h_lead(t)` from before every joint transmission, and
//!    in 802.11n-compat mode the legacy preamble symbols serve this purpose
//!    for unmodified clients (§6.1).

use crate::params::OfdmParams;
use jmb_dsp::{fft, Complex64};

/// Number of samples in the short training field (10 repetitions of a
/// 16-sample pattern).
pub const STF_LEN: usize = 160;
/// Number of samples in the long training field (32-sample GI + 2 × 64).
pub const LTF_LEN: usize = 160;

/// Frequency-domain short-training sequence on subcarriers −26..=26.
///
/// Nonzero every 4th subcarrier, making the time waveform 16-sample periodic.
pub fn stf_freq() -> [Complex64; 53] {
    let p = Complex64::new(1.0, 1.0);
    let n = Complex64::new(-1.0, -1.0);
    let z = Complex64::ZERO;
    let scale = (13.0f64 / 6.0).sqrt();
    // Index 0 ↔ subcarrier −26 … index 52 ↔ subcarrier +26.
    let mut s = [z; 53];
    let entries: [(i32, Complex64); 12] = [
        (-24, p),
        (-20, n),
        (-16, p),
        (-12, n),
        (-8, n),
        (-4, p),
        (4, n),
        (8, n),
        (12, p),
        (16, p),
        (20, p),
        (24, p),
    ];
    for (k, v) in entries {
        s[(k + 26) as usize] = v * scale;
    }
    s
}

/// Frequency-domain long-training sequence `L_k` (±1) on subcarriers −26..=26
/// (index 26 is DC and is zero). IEEE 802.11-2012 §18.3.3.
pub fn ltf_freq() -> [f64; 53] {
    [
        1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0, 1.0, -1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, -1.0, -1.0,
        1.0, 1.0, -1.0, 1.0, -1.0, 1.0, 1.0, 1.0, 1.0, // k = −26..−1
        0.0, // DC
        1.0, -1.0, -1.0, 1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0, -1.0, -1.0, -1.0, -1.0, 1.0, 1.0,
        -1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, 1.0, 1.0, 1.0, // k = +1..+26
    ]
}

/// The 64-sample time-domain LTF symbol (one period).
pub fn ltf_symbol(params: &OfdmParams) -> Vec<Complex64> {
    let l = ltf_freq();
    let mut bins = vec![Complex64::ZERO; params.fft_size];
    for k in -26..=26i32 {
        if k == 0 {
            continue;
        }
        bins[params.bin(k)] = Complex64::real(l[(k + 26) as usize]);
    }
    fft::ifft_in_place(&mut bins);
    bins
}

/// The 16-sample time-domain STF period.
pub fn stf_period(params: &OfdmParams) -> Vec<Complex64> {
    let s = stf_freq();
    let mut bins = vec![Complex64::ZERO; params.fft_size];
    for k in -26..=26i32 {
        if k == 0 {
            continue;
        }
        bins[params.bin(k)] = s[(k + 26) as usize];
    }
    fft::ifft_in_place(&mut bins);
    bins.truncate(16);
    bins
}

/// The full 160-sample short training field.
pub fn stf(params: &OfdmParams) -> Vec<Complex64> {
    let period = stf_period(params);
    let mut out = Vec::with_capacity(STF_LEN);
    for _ in 0..10 {
        out.extend_from_slice(&period);
    }
    out
}

/// The full 160-sample long training field: 32-sample guard (tail of the
/// symbol) followed by two full symbols.
pub fn ltf(params: &OfdmParams) -> Vec<Complex64> {
    let sym = ltf_symbol(params);
    let mut out = Vec::with_capacity(LTF_LEN);
    out.extend_from_slice(&sym[sym.len() - 32..]);
    out.extend_from_slice(&sym);
    out.extend_from_slice(&sym);
    out
}

/// Builds a 160-sample STF from arbitrary 64 frequency bins (IFFT, first 16
/// samples repeated 10×).
///
/// Used by joint transmissions: each AP's precoded STF is the per-subcarrier
/// beamforming weight applied to [`stf_freq`], rendered through this helper.
///
/// # Panics
///
/// Panics if `bins.len() != fft_size`.
pub fn stf_from_bins(params: &OfdmParams, bins: &[Complex64]) -> Vec<Complex64> {
    assert_eq!(bins.len(), params.fft_size);
    let mut body = bins.to_vec();
    fft::ifft_in_place(&mut body);
    let period = &body[..16];
    let mut out = Vec::with_capacity(STF_LEN);
    for _ in 0..10 {
        out.extend_from_slice(period);
    }
    out
}

/// Builds a 160-sample LTF (32-sample guard + 2×64) from arbitrary 64
/// frequency bins. The precoded analogue of [`ltf`].
///
/// # Panics
///
/// Panics if `bins.len() != fft_size`.
pub fn ltf_from_bins(params: &OfdmParams, bins: &[Complex64]) -> Vec<Complex64> {
    assert_eq!(bins.len(), params.fft_size);
    let mut sym = bins.to_vec();
    fft::ifft_in_place(&mut sym);
    let mut out = Vec::with_capacity(LTF_LEN);
    out.extend_from_slice(&sym[sym.len() - 32..]);
    out.extend_from_slice(&sym);
    out.extend_from_slice(&sym);
    out
}

/// The STF frequency sequence placed into 64 FFT bins.
pub fn stf_bins(params: &OfdmParams) -> Vec<Complex64> {
    let s = stf_freq();
    let mut bins = vec![Complex64::ZERO; params.fft_size];
    for k in -26..=26i32 {
        if k != 0 {
            bins[params.bin(k)] = s[(k + 26) as usize];
        }
    }
    bins
}

/// The LTF frequency sequence placed into 64 FFT bins.
pub fn ltf_bins(params: &OfdmParams) -> Vec<Complex64> {
    let l = ltf_freq();
    let mut bins = vec![Complex64::ZERO; params.fft_size];
    for k in -26..=26i32 {
        if k != 0 {
            bins[params.bin(k)] = Complex64::real(l[(k + 26) as usize]);
        }
    }
    bins
}

/// The complete 320-sample legacy preamble (STF + LTF).
///
/// This is exactly the "couple of symbols transmitted by the lead AP" that
/// precede every JMB transmission (§1) — the slave APs' phase reference.
pub fn preamble(params: &OfdmParams) -> Vec<Complex64> {
    let mut out = stf(params);
    out.extend(ltf(params));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmb_dsp::complex::mean_power;

    #[test]
    fn lengths() {
        let p = OfdmParams::default();
        assert_eq!(stf(&p).len(), STF_LEN);
        assert_eq!(ltf(&p).len(), LTF_LEN);
        assert_eq!(preamble(&p).len(), 320);
    }

    #[test]
    fn stf_is_16_periodic() {
        let p = OfdmParams::default();
        let s = stf(&p);
        for n in 0..STF_LEN - 16 {
            assert!((s[n] - s[n + 16]).abs() < 1e-12, "period break at {n}");
        }
    }

    #[test]
    fn ltf_repeats_with_64_period() {
        let p = OfdmParams::default();
        let l = ltf(&p);
        for n in 32..96 {
            assert!((l[n] - l[n + 64]).abs() < 1e-12);
        }
        // Guard is the cyclic tail of the symbol.
        let sym = ltf_symbol(&p);
        for n in 0..32 {
            assert!((l[n] - sym[32 + n]).abs() < 1e-12);
        }
    }

    #[test]
    fn ltf_sequence_counts() {
        let l = ltf_freq();
        assert_eq!(l.len(), 53);
        assert_eq!(l[26], 0.0, "DC must be null");
        let nonzero = l.iter().filter(|&&x| x != 0.0).count();
        assert_eq!(nonzero, 52);
        assert!(l.iter().all(|&x| x == 0.0 || x == 1.0 || x == -1.0));
    }

    #[test]
    fn stf_occupies_every_fourth_subcarrier() {
        let s = stf_freq();
        for (i, v) in s.iter().enumerate() {
            let k = i as i32 - 26;
            if v.abs() > 0.0 {
                assert_eq!(k % 4, 0, "nonzero at subcarrier {k}");
                assert_ne!(k, 0);
            }
        }
        assert_eq!(s.iter().filter(|v| v.abs() > 0.0).count(), 12);
    }

    #[test]
    fn preamble_power_near_unity() {
        // The standard scaling makes average preamble power ≈ data symbol
        // power (unit average on 52 subcarriers / 64 bins).
        let p = OfdmParams::default();
        let pw_stf = mean_power(&stf(&p));
        let pw_ltf = mean_power(&ltf(&p));
        let expected = 52.0 / 64.0 / 64.0; // Σ|X_k|² / N², with |X_k|=1 on 52 bins
        assert!(
            (pw_ltf / expected - 1.0).abs() < 0.05,
            "ltf {pw_ltf} vs {expected}"
        );
        assert!(
            (pw_stf / expected - 1.0).abs() < 0.10,
            "stf {pw_stf} vs {expected}"
        );
    }

    #[test]
    fn stf_autocorrelation_at_lag_16_is_total_power() {
        // The detection metric JMB's sync uses: for a periodic signal the
        // lag-16 autocorrelation has magnitude equal to the power.
        let p = OfdmParams::default();
        let s = stf(&p);
        let mut corr = Complex64::ZERO;
        let mut power = 0.0;
        for n in 0..STF_LEN - 16 {
            corr += s[n].conj() * s[n + 16];
            power += s[n].norm_sqr();
        }
        assert!((corr.abs() / power - 1.0).abs() < 1e-9);
        assert!(corr.arg().abs() < 1e-9, "no CFO ⇒ zero phase");
    }

    #[test]
    fn from_bins_matches_direct_construction() {
        let p = OfdmParams::default();
        assert_eq!(stf_from_bins(&p, &stf_bins(&p)), stf(&p));
        assert_eq!(ltf_from_bins(&p, &ltf_bins(&p)), ltf(&p));
    }

    #[test]
    fn precoded_preamble_scales_linearly() {
        // Scaling the bins by w scales the waveform by w — the property that
        // lets per-subcarrier beamforming weights pass through the preamble.
        let p = OfdmParams::default();
        let w = Complex64::from_polar(0.6, 1.2);
        let scaled: Vec<Complex64> = ltf_bins(&p).iter().map(|&b| b * w).collect();
        let got = ltf_from_bins(&p, &scaled);
        for (g, base) in got.iter().zip(ltf(&p)) {
            assert!((*g - base * w).abs() < 1e-12);
        }
    }

    #[test]
    fn profiles_share_sequences() {
        // Same normalized waveform at both clock rates (only Ts differs).
        let a = preamble(&OfdmParams::new(crate::params::ChannelProfile::Usrp10MHz));
        let b = preamble(&OfdmParams::new(crate::params::ChannelProfile::Wifi20MHz));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < 1e-12);
        }
    }
}
