//! Modulation-and-coding schemes (MCS) — the 802.11a/g rate table.
//!
//! JMB's bitrate selection (§9) picks among these eight schemes using
//! effective SNR. Rates are quoted for the 20 MHz profile; the paper's
//! USRP testbed runs the identical schemes on a 10 MHz channel, which
//! halves every data rate (8 µs symbols instead of 4 µs).

use crate::modulation::Modulation;
use crate::params::OfdmParams;

/// Convolutional code rate after puncturing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeRate {
    /// Rate 1/2 (no puncturing).
    Half,
    /// Rate 2/3.
    TwoThirds,
    /// Rate 3/4.
    ThreeQuarters,
}

impl CodeRate {
    /// The rate as a fraction `(numerator, denominator)`.
    pub fn as_fraction(self) -> (usize, usize) {
        match self {
            CodeRate::Half => (1, 2),
            CodeRate::TwoThirds => (2, 3),
            CodeRate::ThreeQuarters => (3, 4),
        }
    }

    /// The rate as an `f64`.
    pub fn as_f64(self) -> f64 {
        let (n, d) = self.as_fraction();
        n as f64 / d as f64
    }
}

/// One modulation-and-coding scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mcs {
    /// Constellation.
    pub modulation: Modulation,
    /// Code rate.
    pub code_rate: CodeRate,
}

impl Mcs {
    /// The eight 802.11a/g schemes, slowest first.
    pub const ALL: [Mcs; 8] = [
        Mcs {
            modulation: Modulation::Bpsk,
            code_rate: CodeRate::Half,
        },
        Mcs {
            modulation: Modulation::Bpsk,
            code_rate: CodeRate::ThreeQuarters,
        },
        Mcs {
            modulation: Modulation::Qpsk,
            code_rate: CodeRate::Half,
        },
        Mcs {
            modulation: Modulation::Qpsk,
            code_rate: CodeRate::ThreeQuarters,
        },
        Mcs {
            modulation: Modulation::Qam16,
            code_rate: CodeRate::Half,
        },
        Mcs {
            modulation: Modulation::Qam16,
            code_rate: CodeRate::ThreeQuarters,
        },
        Mcs {
            modulation: Modulation::Qam64,
            code_rate: CodeRate::TwoThirds,
        },
        Mcs {
            modulation: Modulation::Qam64,
            code_rate: CodeRate::ThreeQuarters,
        },
    ];

    /// The most robust scheme (BPSK 1/2), used for the SIGNAL field.
    pub const BASE: Mcs = Mcs {
        modulation: Modulation::Bpsk,
        code_rate: CodeRate::Half,
    };

    /// Coded bits per OFDM symbol (`N_CBPS` = 48 · bits-per-subcarrier).
    pub fn coded_bits_per_symbol(&self, params: &OfdmParams) -> usize {
        params.n_data_subcarriers() * self.modulation.bits_per_symbol()
    }

    /// Data bits per OFDM symbol (`N_DBPS`).
    pub fn data_bits_per_symbol(&self, params: &OfdmParams) -> usize {
        let (n, d) = self.code_rate.as_fraction();
        self.coded_bits_per_symbol(params) * n / d
    }

    /// Data rate in bits/second for the given numerology.
    ///
    /// 54 Mbps for 64-QAM 3/4 at 20 MHz; half of that at 10 MHz.
    pub fn bitrate(&self, params: &OfdmParams) -> f64 {
        self.data_bits_per_symbol(params) as f64 / params.symbol_duration()
    }

    /// Index of this scheme in [`Mcs::ALL`].
    pub fn index(&self) -> usize {
        Mcs::ALL
            .iter()
            .position(|m| m == self)
            .expect("every constructible Mcs is in ALL")
    }

    /// Number of OFDM symbols needed for `n_bits` data bits (including the
    /// 16 SERVICE bits and 6 tail bits 802.11 adds around a PSDU).
    pub fn symbols_for_psdu(&self, params: &OfdmParams, psdu_bytes: usize) -> usize {
        let n_bits = 16 + 8 * psdu_bytes + 6;
        n_bits.div_ceil(self.data_bits_per_symbol(params))
    }
}

impl std::fmt::Display for Mcs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (n, d) = self.code_rate.as_fraction();
        write!(f, "{:?} {}/{}", self.modulation, n, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ChannelProfile;

    #[test]
    fn standard_20mhz_rates() {
        let p = OfdmParams::new(ChannelProfile::Wifi20MHz);
        let expected_mbps = [6.0, 9.0, 12.0, 18.0, 24.0, 36.0, 48.0, 54.0];
        for (mcs, mbps) in Mcs::ALL.iter().zip(expected_mbps) {
            assert!(
                (mcs.bitrate(&p) / 1e6 - mbps).abs() < 1e-9,
                "{mcs}: {} Mbps",
                mcs.bitrate(&p) / 1e6
            );
        }
    }

    #[test]
    fn usrp_rates_are_half() {
        let p20 = OfdmParams::new(ChannelProfile::Wifi20MHz);
        let p10 = OfdmParams::new(ChannelProfile::Usrp10MHz);
        for mcs in Mcs::ALL {
            assert!((mcs.bitrate(&p10) * 2.0 - mcs.bitrate(&p20)).abs() < 1e-9);
        }
    }

    #[test]
    fn standard_ndbps() {
        let p = OfdmParams::new(ChannelProfile::Wifi20MHz);
        let expected = [24, 36, 48, 72, 96, 144, 192, 216];
        for (mcs, ndbps) in Mcs::ALL.iter().zip(expected) {
            assert_eq!(mcs.data_bits_per_symbol(&p), ndbps, "{mcs}");
        }
    }

    #[test]
    fn ncbps_divisible_for_puncturing() {
        // Every MCS must produce an integer number of data bits per symbol.
        let p = OfdmParams::default();
        for mcs in Mcs::ALL {
            let (n, d) = mcs.code_rate.as_fraction();
            assert_eq!(mcs.coded_bits_per_symbol(&p) * n % d, 0, "{mcs}");
        }
    }

    #[test]
    fn index_roundtrip() {
        for (i, mcs) in Mcs::ALL.iter().enumerate() {
            assert_eq!(mcs.index(), i);
        }
    }

    #[test]
    fn symbols_for_psdu_counts() {
        let p = OfdmParams::new(ChannelProfile::Wifi20MHz);
        // 1500-byte packet at 54 Mbps: (16 + 12000 + 6)/216 = 55.66 → 56 syms.
        assert_eq!(Mcs::ALL[7].symbols_for_psdu(&p, 1500), 56);
        // At 6 Mbps: 12022/24 = 500.9 → 501.
        assert_eq!(Mcs::ALL[0].symbols_for_psdu(&p, 1500), 501);
        // Empty PSDU still needs one symbol.
        assert_eq!(Mcs::ALL[0].symbols_for_psdu(&p, 0), 1);
    }

    #[test]
    fn display_format() {
        assert_eq!(Mcs::BASE.to_string(), "Bpsk 1/2");
        assert_eq!(Mcs::ALL[7].to_string(), "Qam64 3/4");
    }
}
