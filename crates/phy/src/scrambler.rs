//! 802.11 data scrambler.
//!
//! The standard self-synchronising scrambler with generator `x⁷ + x⁴ + 1`.
//! Scrambling whitens the payload so the OFDM waveform has no strong tones
//! and the pilot polarity sequence (which 802.11 derives from the same LFSR)
//! is pseudo-random. Scrambling is an involution: applying the same seed
//! twice restores the data.

/// The 7-bit LFSR scrambler (x⁷ + x⁴ + 1).
#[derive(Debug, Clone)]
pub struct Scrambler {
    state: u8, // 7 bits
}

impl Scrambler {
    /// Creates a scrambler with a 7-bit seed.
    ///
    /// # Panics
    ///
    /// Panics if `seed` is zero (an all-zero LFSR never advances) or wider
    /// than 7 bits.
    pub fn new(seed: u8) -> Self {
        // jmb-allow(no-panic-hot-path): documented precondition (# Panics) — seeds come from the fixed 7-bit service field
        assert!(
            seed != 0 && seed < 0x80,
            "scrambler seed must be 1..=127, got {seed}"
        );
        Scrambler { state: seed }
    }

    /// Returns the next scrambling bit and advances the LFSR.
    #[inline]
    pub fn next_bit(&mut self) -> u8 {
        // Feedback = x7 xor x4 (bits 6 and 3 of the 7-bit state, counting
        // from 0 at the newest bit).
        let b = ((self.state >> 6) ^ (self.state >> 3)) & 1;
        self.state = ((self.state << 1) | b) & 0x7F;
        b
    }

    /// Scrambles (or descrambles) a bit slice in place.
    pub fn scramble_in_place(&mut self, bits: &mut [u8]) {
        for b in bits.iter_mut() {
            debug_assert!(*b <= 1, "bits must be 0/1");
            *b ^= self.next_bit();
        }
    }

    /// Scrambles a bit slice into a new vector.
    pub fn scramble(&mut self, bits: &[u8]) -> Vec<u8> {
        let mut out = bits.to_vec();
        self.scramble_in_place(&mut out);
        out
    }
}

/// The first 127 bits of the scrambling sequence for the all-ones seed,
/// used by 802.11 as the pilot polarity sequence `p₀, p₁, …`.
///
/// Returns `+1.0` / `-1.0` polarity factors: `p_n = 1 - 2·s_n`.
pub fn pilot_polarity_sequence() -> [f64; 127] {
    let mut s = Scrambler::new(0x7F);
    let mut seq = [0.0; 127];
    for p in seq.iter_mut() {
        *p = if s.next_bit() == 0 { 1.0 } else { -1.0 };
    }
    seq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn involution() {
        let data: Vec<u8> = (0..1000).map(|i| ((i * 7 + 3) % 2) as u8).collect();
        let mut s1 = Scrambler::new(0x45);
        let scrambled = s1.scramble(&data);
        assert_ne!(scrambled, data);
        let mut s2 = Scrambler::new(0x45);
        let restored = s2.scramble(&scrambled);
        assert_eq!(restored, data);
    }

    #[test]
    fn sequence_period_127() {
        // A maximal-length 7-bit LFSR has period 2^7 - 1 = 127.
        let mut s = Scrambler::new(1);
        let first: Vec<u8> = (0..127).map(|_| s.next_bit()).collect();
        let second: Vec<u8> = (0..127).map(|_| s.next_bit()).collect();
        assert_eq!(first, second);
        // And it is not shorter-period.
        for p in 1..127 {
            if 127 % p == 0 && p < 127 {
                let shifted: Vec<u8> = first.iter().cycle().skip(p).take(127).copied().collect();
                assert_ne!(shifted, first, "period divides {p}");
            }
        }
    }

    #[test]
    fn balanced_sequence() {
        // A maximal-length sequence of period 127 has 64 ones and 63 zeros.
        let mut s = Scrambler::new(0x7F);
        let ones: u32 = (0..127).map(|_| s.next_bit() as u32).sum();
        assert_eq!(ones, 64);
    }

    #[test]
    fn standard_sequence_prefix() {
        // IEEE 802.11-2012 §18.3.5.5: with the all-ones initial state the
        // scrambling sequence starts 00001110 11110010 11001001 ...
        let mut s = Scrambler::new(0x7F);
        let got: Vec<u8> = (0..24).map(|_| s.next_bit()).collect();
        let expected = [
            0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1, 0, 1, 1, 0, 0, 1, 0, 0, 1,
        ];
        assert_eq!(got, expected);
    }

    #[test]
    fn pilot_polarity_matches_standard_prefix() {
        // p0..p8 per 802.11: 1,1,1,1,-1,-1,-1,1,-1 (polarity = 1-2*seq bit).
        let p = pilot_polarity_sequence();
        assert_eq!(&p[..9], &[1.0, 1.0, 1.0, 1.0, -1.0, -1.0, -1.0, 1.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "seed")]
    fn zero_seed_rejected() {
        Scrambler::new(0);
    }

    #[test]
    fn different_seeds_differ() {
        let data = vec![0u8; 64];
        let a = Scrambler::new(1).scramble(&data);
        let b = Scrambler::new(2).scramble(&data);
        assert_ne!(a, b);
    }
}
