//! Packet detection, symbol timing, and carrier-frequency-offset estimation.
//!
//! These are the "standard techniques" (Schmidl–Cox style autocorrelation and
//! preamble cross-correlation, \[15\] in the paper) that JMB builds on. Every
//! node runs them:
//!
//! * clients detect and synchronise to the lead AP's sync header, estimating
//!   a *separate CFO per AP* during channel measurement (§5.1b);
//! * slave APs use them to time-align to the lead AP's sync header and to
//!   measure `h_lead(t)`.
//!
//! Accuracy matters because CFO estimation error is exactly the quantity
//! whose *time-extrapolation* the paper shows to be hopeless across packets
//! (10 Hz error → 20° in 5.5 ms, §1). JMB only ever extrapolates within one
//! packet.

use crate::params::OfdmParams;
use crate::preamble::{ltf_symbol, LTF_LEN, STF_LEN};
use jmb_dsp::Complex64;

/// Samples by which the receiver backs its FFT windows off into the cyclic
/// prefix after timing refinement. The correlation peak centres the
/// channel's energy; backing off gives acausal channel pre-cursors
/// (multipath leading edges, interpolation ringing) room inside the CP
/// instead of leaking inter-symbol interference.
pub const TIMING_BACKOFF: usize = 3;

/// Result of preamble synchronisation.
#[derive(Debug, Clone, Copy)]
pub struct SyncResult {
    /// Sample index where the STF begins.
    pub stf_start: usize,
    /// Estimated carrier frequency offset in Hz (receiver relative to
    /// transmitter).
    pub cfo_hz: f64,
}

/// Detects a packet by STF autocorrelation (lag 16 plateau).
///
/// Returns the approximate STF start index, or `None` if no plateau exceeds
/// `threshold` (0–1; 0.6 is a robust default at operational SNRs).
pub fn detect_packet(samples: &[Complex64], threshold: f64) -> Option<usize> {
    const LAG: usize = 16;
    const WINDOW: usize = 48;
    if samples.len() < WINDOW + LAG + 1 {
        return None;
    }
    // Running sums for correlation and power.
    let mut corr = Complex64::ZERO;
    let mut power = 0.0f64;
    for n in 0..WINDOW {
        corr += samples[n].conj() * samples[n + LAG];
        power += samples[n + LAG].norm_sqr();
    }
    let mut best: Option<(usize, f64)> = None;
    let mut run = 0usize;
    for n in 0..samples.len() - WINDOW - LAG {
        let metric = if power > 1e-18 {
            corr.abs() / power
        } else {
            0.0
        };
        if metric > threshold {
            run += 1;
            // Require a sustained plateau (~half the STF) before declaring.
            if run == STF_LEN / 2 {
                let start = n + 1 - run;
                best = Some((start, metric));
                break;
            }
        } else {
            run = 0;
        }
        // Slide the window.
        corr += samples[n + WINDOW].conj() * samples[n + WINDOW + LAG];
        corr -= samples[n].conj() * samples[n + LAG];
        power += samples[n + WINDOW + LAG].norm_sqr();
        power -= samples[n + LAG].norm_sqr();
    }
    best.map(|(s, _)| s)
}

/// Coarse CFO estimate from the STF region via lag-16 autocorrelation.
///
/// `stf` should be (at least most of) the 160-sample STF. Unambiguous range:
/// ±1/(2·16·Ts) = ±312.5 kHz at 10 MHz — far beyond any crystal tolerance.
pub fn coarse_cfo(params: &OfdmParams, stf: &[Complex64]) -> f64 {
    lagged_cfo(params, stf, 16)
}

/// Fine CFO estimate from the two repeated LTF symbols via lag-64
/// autocorrelation. Range ±1/(2·64·Ts); apply after coarse correction.
pub fn fine_cfo(params: &OfdmParams, ltf: &[Complex64]) -> f64 {
    lagged_cfo(params, ltf, 64)
}

fn lagged_cfo(params: &OfdmParams, region: &[Complex64], lag: usize) -> f64 {
    // jmb-allow(no-panic-hot-path): internal helper — both call sites pass preamble windows longer than the fixed lag
    assert!(region.len() > lag, "region shorter than lag");
    let mut acc = Complex64::ZERO;
    for n in 0..region.len() - lag {
        acc += region[n].conj() * region[n + lag];
    }
    // r[n+lag] = r[n]·e^{j2πΔf·lag·Ts} ⇒ Δf = arg/(2π·lag·Ts).
    acc.arg() / (2.0 * std::f64::consts::PI * lag as f64 * params.sample_period())
}

/// Removes a CFO of `freq_hz` from `samples` in place, starting at phase
/// `phase0` (radians) for the first sample. Returns the phase after the last
/// sample so correction can be continued across buffers.
pub fn correct_cfo(
    params: &OfdmParams,
    samples: &mut [Complex64],
    freq_hz: f64,
    phase0: f64,
) -> f64 {
    let dphi = -2.0 * std::f64::consts::PI * freq_hz * params.sample_period();
    let mut phase = phase0;
    for s in samples.iter_mut() {
        *s *= Complex64::cis(phase);
        phase += dphi;
    }
    phase
}

/// Refines symbol timing by cross-correlating with the known 64-sample LTF
/// symbol around a coarse estimate.
///
/// `coarse_ltf_start` is the expected index of the *LTF field* start (the
/// guard). Searches ±`radius` samples and returns the refined LTF field
/// start index.
pub fn refine_timing(
    params: &OfdmParams,
    samples: &[Complex64],
    coarse_ltf_start: usize,
    radius: usize,
) -> usize {
    let reference = ltf_symbol(params);
    let mut best_idx = coarse_ltf_start;
    let mut best_metric = -1.0f64;
    let lo = coarse_ltf_start.saturating_sub(radius);
    let hi = (coarse_ltf_start + radius).min(samples.len().saturating_sub(LTF_LEN));
    for cand in lo..=hi {
        // The first full LTF symbol starts 32 samples into the field.
        let sym_start = cand + 32;
        if sym_start + 64 > samples.len() {
            break;
        }
        let mut corr = Complex64::ZERO;
        let mut power = 0.0;
        for n in 0..64 {
            corr += samples[sym_start + n] * reference[n].conj();
            power += samples[sym_start + n].norm_sqr();
        }
        let metric = if power > 1e-18 {
            corr.norm_sqr() / power
        } else {
            0.0
        };
        if metric > best_metric {
            best_metric = metric;
            best_idx = cand;
        }
    }
    best_idx
}

/// Full synchronisation: detect, estimate CFO (coarse from STF then fine from
/// the CFO-corrected LTF), refine timing. Returns `None` if no packet found.
///
/// This is the receiver front end shared by clients and slave APs.
pub fn synchronize(params: &OfdmParams, samples: &[Complex64]) -> Option<SyncResult> {
    let stf_start = detect_packet(samples, 0.6)?;
    if stf_start + STF_LEN + LTF_LEN > samples.len() {
        return None;
    }
    // Coarse CFO from the STF interior. Both ends are trimmed so that a
    // timing error of a few samples (multipath shifts the correlation peak)
    // cannot pull foreign samples — one contaminated lag pair is enough to
    // bias the estimate by hundreds of Hz.
    let stf_region = &samples[stf_start + 16..stf_start + STF_LEN - 8];
    let coarse = coarse_cfo(params, stf_region);

    // Correct, then refine timing and estimate fine CFO on the LTF. The
    // autocorrelation detector can fire up to a correlation window (64
    // samples) early when the medium is silent before the packet — with low
    // noise the metric is ≈1 from the first overlapping sample — so the LTF
    // cross-correlation search radius must cover the full slop. The search
    // stays below the first payload symbol (320), so it cannot false-peak
    // on data.
    let mut work = samples[stf_start..].to_vec();
    correct_cfo(params, &mut work, coarse, 0.0);
    let ltf_coarse = STF_LEN; // LTF nominally right after STF in `work`
    let ltf_start = refine_timing(params, &work, ltf_coarse, 80);
    // Fine CFO from the interior of the two repeated LTF symbols, trimmed
    // for the same timing tolerance as above.
    let ltf_region = &work[ltf_start + 40..ltf_start + LTF_LEN - 8];
    let fine = fine_cfo(params, ltf_region);

    Some(SyncResult {
        // Adjust STF start by the timing refinement found at the LTF, then
        // back off into the CP.
        stf_start: (stf_start + ltf_start - STF_LEN).saturating_sub(TIMING_BACKOFF),
        cfo_hz: coarse + fine,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preamble;

    fn params() -> OfdmParams {
        OfdmParams::default()
    }

    /// Builds `pad_front` zeros + preamble (with CFO applied) + `pad_back` zeros.
    fn padded_preamble(p: &OfdmParams, pad_front: usize, cfo_hz: f64) -> Vec<Complex64> {
        let mut v = vec![Complex64::ZERO; pad_front];
        let pre = preamble::preamble(p);
        let ts = p.sample_period();
        for (n, &x) in pre.iter().enumerate() {
            let phase = 2.0 * std::f64::consts::PI * cfo_hz * (n as f64) * ts;
            v.push(x * Complex64::cis(phase));
        }
        v.extend(vec![Complex64::ZERO; 200]);
        v
    }

    #[test]
    fn detects_clean_preamble() {
        let p = params();
        let sig = padded_preamble(&p, 100, 0.0);
        let found = detect_packet(&sig, 0.6).expect("detection");
        // The autocorrelation metric ramps up while the window straddles the
        // silent/packet boundary, so detection may fire early; synchronize()
        // fixes the residual with LTF cross-correlation.
        assert!(
            (found as isize - 100).unsigned_abs() <= 32,
            "found at {found}, expected ≈100"
        );
    }

    #[test]
    fn no_false_alarm_on_noise() {
        // Deterministic pseudo-noise.
        let mut s: u64 = 9;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) - 0.5
        };
        let noise: Vec<Complex64> = (0..2000).map(|_| Complex64::new(next(), next())).collect();
        assert_eq!(detect_packet(&noise, 0.6), None);
    }

    #[test]
    fn no_detection_in_short_buffers() {
        assert_eq!(detect_packet(&[Complex64::ONE; 10], 0.6), None);
    }

    #[test]
    fn coarse_cfo_accuracy() {
        let p = params();
        for &f in &[-40e3, -5e3, 0.0, 1e3, 20e3, 48e3] {
            let sig = padded_preamble(&p, 0, f);
            let est = coarse_cfo(&p, &sig[16..STF_LEN]);
            assert!((est - f).abs() < 50.0, "cfo {f}: est {est}");
        }
    }

    #[test]
    fn fine_cfo_accuracy() {
        let p = params();
        for &f in &[-600.0, -100.0, 0.0, 250.0, 700.0] {
            let sig = padded_preamble(&p, 0, f);
            let ltf_region = &sig[STF_LEN + 32..STF_LEN + LTF_LEN];
            let est = fine_cfo(&p, ltf_region);
            assert!((est - f).abs() < 5.0, "cfo {f}: est {est}");
        }
    }

    #[test]
    fn correct_cfo_inverts_offset() {
        let p = params();
        let f = 12_345.0;
        let mut sig = padded_preamble(&p, 0, f);
        correct_cfo(&p, &mut sig, f, 0.0);
        let clean = preamble::preamble(&p);
        for (a, b) in sig.iter().zip(&clean) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn correct_cfo_phase_continuity() {
        let p = params();
        let f = 5_000.0;
        let mut a = padded_preamble(&p, 0, f);
        let mut b = a.split_off(160);
        let phase = correct_cfo(&p, &mut a, f, 0.0);
        correct_cfo(&p, &mut b, f, phase);
        let clean = preamble::preamble(&p);
        for (x, y) in a.iter().chain(b.iter()).zip(&clean) {
            assert!((*x - *y).abs() < 1e-9);
        }
    }

    #[test]
    fn timing_refinement_finds_exact_start() {
        let p = params();
        let sig = padded_preamble(&p, 77, 0.0);
        // True LTF field start is 77 + 160 = 237; perturb the coarse guess.
        for coarse in [231, 237, 243] {
            let refined = refine_timing(&p, &sig, coarse, 8);
            assert_eq!(refined, 237, "coarse {coarse}");
        }
    }

    #[test]
    fn full_synchronize_recovers_timing_and_cfo() {
        let p = params();
        let true_cfo = 23_456.0;
        let sig = padded_preamble(&p, 150, true_cfo);
        let sync = synchronize(&p, &sig).expect("sync");
        assert_eq!(sync.stf_start, 150 - TIMING_BACKOFF, "timing");
        assert!(
            (sync.cfo_hz - true_cfo).abs() < 20.0,
            "cfo est {} vs {true_cfo}",
            sync.cfo_hz
        );
    }

    #[test]
    fn synchronize_none_when_truncated() {
        let p = params();
        let sig = padded_preamble(&p, 10, 0.0);
        assert!(synchronize(&p, &sig[..200]).is_none());
    }

    #[test]
    fn cfo_estimate_noise_floor() {
        // With a modest additive disturbance the estimate degrades gracefully.
        let p = params();
        let f = 10_000.0;
        let mut sig = padded_preamble(&p, 0, f);
        let mut s: u64 = 17;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s as f64 / u64::MAX as f64) - 0.5) * 0.02
        };
        for x in sig.iter_mut() {
            *x += Complex64::new(next(), next());
        }
        let est = coarse_cfo(&p, &sig[16..STF_LEN]);
        assert!((est - f).abs() < 500.0, "est {est}");
    }
}
