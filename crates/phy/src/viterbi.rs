//! Soft-decision Viterbi decoder for the 802.11 (133,171) code.
//!
//! Maximum-likelihood sequence decoding over the 64-state trellis of the
//! rate-1/2 K=7 encoder in [`crate::convcode`]. The decoder consumes one
//! soft value (LLR) per rate-1/2 coded bit — punctured positions are fed as
//! `0.0` erasures by [`crate::convcode::depuncture`] — and exploits the
//! 802.11 tail bits to terminate the trellis in state 0.
//!
//! LLR sign convention: **positive = bit 0 more likely** (matches
//! [`crate::modulation::Modulation::demap_soft`]).
//!
//! Two implementations live here (DESIGN.md §3.11):
//!
//! * [`decode`] / [`decode_with`] — the throughput decoder. Path metrics are
//!   held in a struct-of-arrays layout (one flat `[f64; 64]` per trellis
//!   column), the add-compare-select step is branchless (clamped candidates,
//!   select-by-comparison), and survivor decisions are one byte lane per
//!   state per step in a flat buffer (the [`UNREACHED`] flag shares the
//!   byte) instead of a per-step `Vec`.
//! * [`decode_reference`] — the original scalar decoder, kept as the
//!   executable specification. Property tests assert the fast decoder is
//!   bit-exact against it, including NaN and ±∞ soft inputs.

use crate::convcode::{G0, G1, TAIL_BITS};

/// Number of trellis states (`2^(K-1)` for the constraint-length-7 code).
pub const N_STATES: usize = 64;
/// Path metric of an unreached state.
pub const NEG_INF: f64 = f64::NEG_INFINITY;

/// Path metrics are shifted down when they exceed this bound so that long
/// streams cannot overflow to `+∞`. The threshold is astronomically above
/// anything reachable from physical LLRs, so renormalisation never fires on
/// sane inputs and the decoder stays bit-exact with [`decode_reference`].
const RENORM_LIMIT: f64 = 1e250;

/// How often (in trellis steps) the renormalisation check runs.
const RENORM_INTERVAL: usize = 64;

/// Butterfly output codes: `BFLY_CODE[j]` is the 2-bit encoder output
/// (bit 1 = g0, bit 0 = g1) of the transition from predecessor `2j` into
/// new state `j` (input bit 0), for `j < 32`.
///
/// The three sibling transitions of the butterfly follow by sign symmetry:
/// the predecessor's LSB and the input bit each feed both generator taps
/// (bit 0 and bit 6 are set in both `G0` and `G1`), so flipping either one
/// flips both output bits, i.e. negates the branch metric.
const BFLY_CODE: [u8; 32] = build_bfly_code();

const fn build_bfly_code() -> [u8; 32] {
    let mut t = [0u8; 32];
    let mut j = 0;
    while j < 32 {
        // reg = (input bit << 6) | prev, with input 0 and prev = 2j.
        let reg = (j << 1) as u8;
        t[j] = ((((reg & G0).count_ones() & 1) << 1) | ((reg & G1).count_ones() & 1)) as u8;
        j += 1;
    }
    t
}

/// Per-butterfly sign of `l0` (g0 soft value) in the branch metric of the
/// `2j → j` transition: `+1.0` when the output bit is 0.
const SIGN0: [f64; 32] = build_signs(0b10);
/// Per-butterfly sign of `l1` (g1 soft value), as [`SIGN0`].
const SIGN1: [f64; 32] = build_signs(0b01);

const fn build_signs(mask: u8) -> [f64; 32] {
    let mut t = [0.0f64; 32];
    let mut j = 0;
    while j < 32 {
        t[j] = if BFLY_CODE[j] & mask == 0 { 1.0 } else { -1.0 };
        j += 1;
    }
    t
}

/// Precomputed trellis for [`decode_reference`]: for each `(state, input)`
/// the next state and the two output bits.
#[derive(Debug, Clone)]
struct Trellis {
    /// `next[state][input]`.
    next: [[u8; 2]; N_STATES],
    /// `out[state][input]` = 2-bit output, bit1 = g0 output, bit0 = g1 output.
    out: [[u8; 2]; N_STATES],
}

impl Trellis {
    fn new() -> Self {
        let mut next = [[0u8; 2]; N_STATES];
        let mut out = [[0u8; 2]; N_STATES];
        for s in 0..N_STATES {
            for b in 0..2usize {
                let reg = ((b as u8) << 6) | s as u8;
                let o0 = (reg & G0).count_ones() as u8 & 1;
                let o1 = (reg & G1).count_ones() as u8 & 1;
                next[s][b] = reg >> 1;
                out[s][b] = (o0 << 1) | o1;
            }
        }
        Trellis { next, out }
    }

    fn shared() -> &'static Trellis {
        use std::sync::OnceLock;
        static T: OnceLock<Trellis> = OnceLock::new();
        T.get_or_init(Trellis::new)
    }
}

/// Errors from Viterbi decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViterbiError {
    /// The soft input length is odd or shorter than the tail.
    BadInputLength(usize),
}

impl std::fmt::Display for ViterbiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViterbiError::BadInputLength(n) => {
                write!(f, "soft input length {n} is not a valid coded length")
            }
        }
    }
}

impl std::error::Error for ViterbiError {}

/// Survivor-decision byte for one `(step, state)` cell: bit 0 set ⇒ the
/// survivor came from the odd predecessor (`(s<<1)&63 | 1`); bit
/// [`UNREACHED`] set ⇒ no admissible (finite-metric) path reached this state
/// and traceback restarts at `(state 0, bit 0)`, mirroring the reference
/// decoder's zero-initialised decision bytes.
pub const UNREACHED: u8 = 0b10;

/// Reusable survivor storage for [`decode_with`]: one decision byte per
/// `(step, state)`, stored as flat `n_steps × 64` lanes so the
/// add-compare-select loop writes them with contiguous vector stores
/// (packing them into per-step `u64` masks would serialise the loop on the
/// shift-or chain). Allocate once per receiver and recycle across frames —
/// `decode_with` grows it as needed and never shrinks it.
#[derive(Debug, Clone, Default)]
pub struct ViterbiScratch {
    /// `decision[t * 64 + s]`: see [`UNREACHED`].
    decision: Vec<u8>,
}

impl ViterbiScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One block of add-compare-select steps over the 64-state trellis.
///
/// Consumes `soft` two values (one trellis step) at a time, advancing
/// `metric` in place and recording 64 decision bytes per step into
/// `decision` (bit 0 = odd predecessor won, bit 1 = [`UNREACHED`]).
/// Processes as many steps as the shorter of the two buffers allows and
/// returns that count.
///
/// The loop body is written as pure vertical lane arithmetic so LLVM can
/// auto-vectorise it: predecessor metrics are deinterleaved into even/odd
/// lanes once per step, every load and store in the butterfly loop is then
/// contiguous, and decisions land as byte lanes instead of a packed bitmask
/// (a `|= … << j` chain would serialise the loop).
///
/// Admission mirrors [`decode_reference`] exactly: a candidate that is NaN
/// (a NaN LLR from equalising a spectral null) or −∞ (unreached predecessor)
/// is clamped to −∞ and can never beat an admissible path; ties select the
/// even predecessor, as the reference's ascending-state scan does.
pub fn acs_block(soft: &[f64], metric: &mut [f64; N_STATES], decision: &mut [u8]) -> usize {
    const HALF: usize = N_STATES / 2;
    let mut cur = *metric;
    // Even/odd predecessor metrics: `even[j] = cur[2j]`, `odd[j] = cur[2j+1]`.
    let mut even = [NEG_INF; HALF];
    let mut odd = [NEG_INF; HALF];
    let mut n_steps = 0usize;
    for (pair, dec) in soft
        .chunks_exact(2)
        .zip(decision.chunks_exact_mut(N_STATES))
    {
        let (l0, l1) = (pair[0], pair[1]);
        // Deinterleave the trellis shuffle as explicit pair swaps so the
        // backend lowers it to packed shuffles rather than scalar moves.
        for ((quad, e), o) in cur
            .chunks_exact(4)
            .zip(even.chunks_exact_mut(2))
            .zip(odd.chunks_exact_mut(2))
        {
            e[0] = quad[0];
            e[1] = quad[2];
            o[0] = quad[1];
            o[1] = quad[3];
        }
        // Butterfly j couples predecessors {2j, 2j+1} to new states
        // {j, j+32}; the four branch metrics are ±g with g the metric of
        // the 2j→j transition (see BFLY_CODE). Exact sign symmetry keeps
        // every candidate bitwise identical to the reference's. The winner
        // select reuses the `c1 > c0` mask: candidates are NaN-free after
        // the clamp, and path metrics are never −0.0 (they start at +0.0 and
        // a round-to-nearest sum of a non-negative-zero value is never −0.0),
        // so select-by-comparison equals the reference's scan bitwise.
        let (lo, hi) = cur.split_at_mut(HALF);
        let (dec_lo, dec_hi) = dec.split_at_mut(HALF);
        for j in 0..HALF {
            let g = SIGN0[j] * l0 + SIGN1[j] * l1;
            let m0 = even[j];
            let m1 = odd[j];
            // New state j (input bit 0): branches +g / −g. The clamped
            // metric is NaN-free, so `m == NEG_INF` is exactly "unreached".
            let c0 = (m0 + g).max(NEG_INF);
            let c1 = (m1 - g).max(NEG_INF);
            let take1 = c1 > c0;
            let m = if take1 { c1 } else { c0 };
            lo[j] = m;
            dec_lo[j] = take1 as u8 | (((m == NEG_INF) as u8) << 1);
            // New state j+32 (input bit 1): signs flipped.
            let c0 = (m0 - g).max(NEG_INF);
            let c1 = (m1 + g).max(NEG_INF);
            let take1 = c1 > c0;
            let m = if take1 { c1 } else { c0 };
            hi[j] = m;
            dec_hi[j] = take1 as u8 | (((m == NEG_INF) as u8) << 1);
        }
        n_steps += 1;
        if n_steps.is_multiple_of(RENORM_INTERVAL) {
            let mx = cur.iter().fold(NEG_INF, |a, &b| a.max(b));
            if mx > RENORM_LIMIT && mx.is_finite() {
                for m in cur.iter_mut() {
                    *m -= mx; // −∞ stays −∞; finite paths shift uniformly
                }
            }
        }
    }
    *metric = cur;
    n_steps
}

/// Decodes a rate-1/2 soft stream (LLR per coded bit, erasures as 0.0).
///
/// `soft.len()` must be even and correspond to at least the 6 tail bits.
/// Returns the decoded data bits **without** the tail.
///
/// Allocation-free variant of [`decode`]: survivor masks live in `scratch`
/// and the decoded bits are written into `out` (cleared first).
pub fn decode_with(
    soft: &[f64],
    scratch: &mut ViterbiScratch,
    out: &mut Vec<u8>,
) -> Result<(), ViterbiError> {
    if !soft.len().is_multiple_of(2) || soft.len() / 2 < TAIL_BITS {
        return Err(ViterbiError::BadInputLength(soft.len()));
    }
    let n_steps = soft.len() / 2;
    // Grow-only, no re-zeroing: acs_block overwrites every byte of the
    // first n_steps × 64 cells before traceback reads them.
    if scratch.decision.len() < n_steps * N_STATES {
        scratch.decision.resize(n_steps * N_STATES, 0);
    }

    let mut metric = [NEG_INF; N_STATES];
    metric[0] = 0.0; // encoder starts in state 0
    acs_block(
        soft,
        &mut metric,
        &mut scratch.decision[..n_steps * N_STATES],
    );

    // The tail flushes the encoder to state 0; terminate there. If state 0 is
    // unreachable (severe erasures), fall back to the best surviving state.
    let mut state = if metric[0] > NEG_INF {
        0usize
    } else {
        metric
            .iter()
            .enumerate()
            // total_cmp for parity with decode_reference (the clamped
            // metrics are NaN-free, so this is a plain max, last-wins).
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    };

    out.clear();
    out.resize(n_steps, 0);
    for t in (0..n_steps).rev() {
        let d = scratch.decision[t * N_STATES + state];
        if d & UNREACHED != 0 {
            // Unreached state: the reference decoder's decision byte is the
            // zero-initialised (prev 0, bit 0).
            out[t] = 0;
            state = 0;
        } else {
            out[t] = (state >> 5) as u8;
            state = ((state << 1) & (N_STATES - 1)) | (d & 1) as usize;
        }
    }
    out.truncate(n_steps - TAIL_BITS);
    Ok(())
}

/// Decodes a rate-1/2 soft stream (LLR per coded bit, erasures as 0.0).
///
/// `soft.len()` must be even and correspond to at least the 6 tail bits.
/// Returns the decoded data bits **without** the tail.
///
/// # Examples
///
/// ```
/// use jmb_phy::{convcode, viterbi};
///
/// let data = vec![1, 0, 1, 1, 0, 1, 0, 0];
/// let coded = convcode::encode(&data);
/// // Perfect soft values: +1 for coded 0, -1 for coded 1.
/// let soft: Vec<f64> = coded.iter().map(|&b| if b == 0 { 1.0 } else { -1.0 }).collect();
/// assert_eq!(viterbi::decode(&soft).unwrap(), data);
/// ```
pub fn decode(soft: &[f64]) -> Result<Vec<u8>, ViterbiError> {
    std::thread_local! {
        /// Survivor storage reused across calls, so standalone `decode`
        /// callers get the same allocation-amortised path as `decode_with`.
        static TLS_SCRATCH: std::cell::RefCell<ViterbiScratch> =
            std::cell::RefCell::new(ViterbiScratch::new());
    }
    let mut out = Vec::new();
    TLS_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => decode_with(soft, &mut scratch, &mut out),
        Err(_) => decode_with(soft, &mut ViterbiScratch::new(), &mut out),
    })?;
    Ok(out)
}

/// The original scalar decoder, retained as the executable specification of
/// [`decode`]'s exact semantics (admission rules, tie-breaks, NaN handling,
/// terminal-state fallback). Differential tests assert bit-exact agreement;
/// production paths use [`decode`] / [`decode_with`].
pub fn decode_reference(soft: &[f64]) -> Result<Vec<u8>, ViterbiError> {
    if !soft.len().is_multiple_of(2) || soft.len() / 2 < TAIL_BITS {
        return Err(ViterbiError::BadInputLength(soft.len()));
    }
    let n_steps = soft.len() / 2;
    let trellis = Trellis::shared();

    let mut metric = [NEG_INF; N_STATES];
    metric[0] = 0.0; // encoder starts in state 0
    let mut new_metric = [NEG_INF; N_STATES];
    // decisions[t][next_state] = (prev_state, input_bit) packed: bit7 = input,
    // low 6 bits = prev state.
    let mut decisions = vec![[0u8; N_STATES]; n_steps];

    for t in 0..n_steps {
        let l0 = soft[2 * t];
        let l1 = soft[2 * t + 1];
        // Per-output-bit metric contribution: bit value 0 earns +l, 1 earns −l.
        let bm = |out: u8| -> f64 {
            let m0 = if out & 0b10 == 0 { l0 } else { -l0 };
            let m1 = if out & 0b01 == 0 { l1 } else { -l1 };
            m0 + m1
        };
        new_metric.fill(NEG_INF);
        for (s, &m) in metric.iter().enumerate() {
            if m == NEG_INF {
                continue;
            }
            for b in 0..2usize {
                let ns = trellis.next[s][b] as usize;
                let cand = m + bm(trellis.out[s][b]);
                if cand > new_metric[ns] {
                    new_metric[ns] = cand;
                    decisions[t][ns] = ((b as u8) << 7) | s as u8;
                }
            }
        }
        metric.copy_from_slice(&new_metric);
    }

    // The tail flushes the encoder to state 0; terminate there. If state 0 is
    // unreachable (severe erasures), fall back to the best surviving state.
    let mut state = if metric[0] > NEG_INF {
        0usize
    } else {
        metric
            .iter()
            .enumerate()
            // total_cmp: a NaN metric (possible when upstream equalisation
            // divides by a spectral null) must yield a wrong pick that the
            // CRC rejects, never a decoder panic.
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    };

    let mut bits = vec![0u8; n_steps];
    for t in (0..n_steps).rev() {
        let d = decisions[t][state];
        bits[t] = d >> 7;
        state = (d & 0x3F) as usize;
    }
    bits.truncate(n_steps - TAIL_BITS);
    Ok(bits)
}

/// Hard-decision convenience wrapper: converts bits to ±1 soft values and
/// decodes.
pub fn decode_hard(coded: &[u8]) -> Result<Vec<u8>, ViterbiError> {
    let soft: Vec<f64> = coded
        .iter()
        .map(|&b| if b == 0 { 1.0 } else { -1.0 })
        .collect();
    decode(&soft)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convcode::{depuncture, encode, puncture};
    use crate::rates::CodeRate;

    fn to_soft(coded: &[u8]) -> Vec<f64> {
        coded
            .iter()
            .map(|&b| if b == 0 { 1.0 } else { -1.0 })
            .collect()
    }

    #[test]
    fn noiseless_roundtrip() {
        let data: Vec<u8> = (0..100).map(|i| ((i * 31 + 7) % 2) as u8).collect();
        let coded = encode(&data);
        assert_eq!(decode(&to_soft(&coded)).unwrap(), data);
    }

    #[test]
    fn hard_decision_roundtrip() {
        let data: Vec<u8> = (0..64).map(|i| ((i >> 2) % 2) as u8).collect();
        let coded = encode(&data);
        assert_eq!(decode_hard(&coded).unwrap(), data);
    }

    #[test]
    fn corrects_scattered_bit_flips() {
        // The free distance of (133,171) is 10: up to 4 substitutions in a
        // window are correctable; scattered errors certainly are.
        let data: Vec<u8> = (0..200).map(|i| ((i * 13 + 5) % 2) as u8).collect();
        let mut coded = encode(&data);
        for &pos in &[10usize, 57, 130, 260, 333] {
            coded[pos] ^= 1;
        }
        assert_eq!(decode(&to_soft(&coded)).unwrap(), data);
    }

    #[test]
    fn soft_information_beats_hard() {
        // A weakly-received (low |LLR|) wrong bit should be overridden by
        // strong neighbours.
        let data = vec![1u8, 1, 0, 1, 0, 0, 1, 0, 1, 1];
        let coded = encode(&data);
        let mut soft = to_soft(&coded);
        // Flip the sign of one bit but make it low confidence.
        soft[7] = -soft[7] * 0.05;
        assert_eq!(decode(&soft).unwrap(), data);
    }

    #[test]
    fn punctured_roundtrip_all_rates() {
        let data: Vec<u8> = (0..120).map(|i| ((i * 29 + 1) % 2) as u8).collect();
        let coded = encode(&data);
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let punct = puncture(&coded, rate);
            let soft = to_soft(&punct);
            let restored = depuncture(&soft, rate, coded.len());
            assert_eq!(decode(&restored).unwrap(), data, "rate {rate:?}");
        }
    }

    #[test]
    fn punctured_with_errors() {
        let data: Vec<u8> = (0..150).map(|i| ((i * 17) % 2) as u8).collect();
        let coded = encode(&data);
        let mut punct = puncture(&coded, CodeRate::ThreeQuarters);
        punct[40] ^= 1;
        punct[200] ^= 1;
        let soft = to_soft(&punct);
        let restored = depuncture(&soft, CodeRate::ThreeQuarters, coded.len());
        assert_eq!(decode(&restored).unwrap(), data);
    }

    #[test]
    fn empty_data_roundtrip() {
        // Only tail bits.
        let coded = encode(&[]);
        assert_eq!(decode(&to_soft(&coded)).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn rejects_bad_lengths() {
        assert!(matches!(
            decode(&[1.0; 7]),
            Err(ViterbiError::BadInputLength(7))
        ));
        assert!(matches!(
            decode(&[1.0; 4]),
            Err(ViterbiError::BadInputLength(4))
        ));
        assert!(matches!(
            decode_reference(&[1.0; 7]),
            Err(ViterbiError::BadInputLength(7))
        ));
    }

    #[test]
    fn all_erasures_decodes_to_something_sane() {
        // With zero information everywhere, the decoder must still terminate
        // and produce the right length (contents are arbitrary but valid bits).
        let n_data = 20;
        let coded_len = 2 * (n_data + TAIL_BITS);
        let soft = vec![0.0; coded_len];
        let out = decode(&soft).unwrap();
        assert_eq!(out.len(), n_data);
        assert!(out.iter().all(|&b| b <= 1));
        assert_eq!(out, decode_reference(&soft).unwrap());
    }

    #[test]
    fn butterfly_tables_match_trellis() {
        // The const butterfly tables must agree with the reference trellis:
        // BFLY_CODE[j] is the output of (prev=2j, input=0), and the three
        // sibling transitions are its bitwise complements per the sign rule.
        let tr = Trellis::shared();
        for (j, &code) in BFLY_CODE.iter().enumerate() {
            assert_eq!(code, tr.out[2 * j][0], "j={j} even/0");
            assert_eq!(code ^ 0b11, tr.out[2 * j + 1][0], "j={j} odd/0");
            assert_eq!(code ^ 0b11, tr.out[2 * j][1], "j={j} even/1");
            assert_eq!(code, tr.out[2 * j + 1][1], "j={j} odd/1");
            assert_eq!(tr.next[2 * j][0] as usize, j);
            assert_eq!(tr.next[2 * j + 1][0] as usize, j);
            assert_eq!(tr.next[2 * j][1] as usize, j + 32);
            assert_eq!(tr.next[2 * j + 1][1] as usize, j + 32);
        }
    }

    #[test]
    fn fast_matches_reference_on_noisy_soft_values() {
        // Deterministic LCG noise over several lengths; the fast decoder
        // must agree bit-for-bit with the reference, errors and all.
        let mut lcg: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (lcg >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for n_data in [1usize, 7, 53, 200] {
            let data: Vec<u8> = (0..n_data).map(|i| ((i * 29 + 3) % 2) as u8).collect();
            let coded = encode(&data);
            let soft: Vec<f64> = coded
                .iter()
                .map(|&b| {
                    let tx = if b == 0 { 1.0 } else { -1.0 };
                    tx + 3.0 * next()
                })
                .collect();
            assert_eq!(
                decode(&soft).unwrap(),
                decode_reference(&soft).unwrap(),
                "n_data={n_data}"
            );
        }
    }

    #[test]
    fn fast_matches_reference_with_nan_and_inf() {
        let data: Vec<u8> = (0..60).map(|i| ((i * 11 + 2) % 2) as u8).collect();
        let coded = encode(&data);
        let mut soft = to_soft(&coded);
        soft[4] = f64::NAN;
        soft[5] = f64::NAN;
        soft[20] = f64::INFINITY;
        soft[33] = f64::NEG_INFINITY;
        soft[70] = f64::NAN;
        assert_eq!(decode(&soft).unwrap(), decode_reference(&soft).unwrap());
    }

    #[test]
    fn scratch_reuse_is_stateless() {
        // A recycled scratch must decode exactly like a fresh one, including
        // after a longer frame has grown its buffers.
        let mut scratch = ViterbiScratch::new();
        let mut out = Vec::new();
        let long: Vec<u8> = (0..300).map(|i| ((i * 7 + 1) % 2) as u8).collect();
        let short: Vec<u8> = (0..40).map(|i| ((i * 13 + 4) % 2) as u8).collect();
        for data in [&long, &short] {
            let coded = encode(data);
            let soft = to_soft(&coded);
            decode_with(&soft, &mut scratch, &mut out).unwrap();
            assert_eq!(&out, data);
        }
    }

    #[test]
    fn awgn_ber_better_than_uncoded() {
        // Crude end-to-end sanity: at ~4 dB Eb/N0 the coded system over BPSK
        // should be essentially error-free for short blocks while uncoded
        // would not be. Uses a tiny deterministic LCG as the noise source to
        // avoid a rand dev-dependency in this unit test.
        let mut lcg: u64 = 0x1234_5678;
        let mut noise = || {
            // Sum of 12 uniforms ≈ N(0,1).
            let mut acc = 0.0f64;
            for _ in 0..12 {
                lcg = lcg
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                acc += (lcg >> 11) as f64 / (1u64 << 53) as f64;
            }
            acc - 6.0
        };
        let data: Vec<u8> = (0..500).map(|i| ((i * 37 + 11) % 2) as u8).collect();
        let coded = encode(&data);
        let sigma = 0.5; // Es/N0 = 1/(2σ²) = 2 → 3 dB per coded bit
        let soft: Vec<f64> = coded
            .iter()
            .map(|&b| {
                let tx = if b == 0 { 1.0 } else { -1.0 };
                2.0 * (tx + sigma * noise()) / (sigma * sigma)
            })
            .collect();
        let decoded = decode(&soft).unwrap();
        let errors = decoded.iter().zip(&data).filter(|(a, b)| a != b).count();
        assert_eq!(errors, 0, "{errors} bit errors after decoding");
    }
}
