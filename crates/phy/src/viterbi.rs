//! Soft-decision Viterbi decoder for the 802.11 (133,171) code.
//!
//! Maximum-likelihood sequence decoding over the 64-state trellis of the
//! rate-1/2 K=7 encoder in [`crate::convcode`]. The decoder consumes one
//! soft value (LLR) per rate-1/2 coded bit — punctured positions are fed as
//! `0.0` erasures by [`crate::convcode::depuncture`] — and exploits the
//! 802.11 tail bits to terminate the trellis in state 0.
//!
//! LLR sign convention: **positive = bit 0 more likely** (matches
//! [`crate::modulation::Modulation::demap_soft`]).

use crate::convcode::{G0, G1, TAIL_BITS};

const N_STATES: usize = 64;

/// Precomputed trellis: for each `(state, input)` the next state and the two
/// output bits.
#[derive(Debug, Clone)]
struct Trellis {
    /// `next[state][input]`.
    next: [[u8; 2]; N_STATES],
    /// `out[state][input]` = 2-bit output, bit1 = g0 output, bit0 = g1 output.
    out: [[u8; 2]; N_STATES],
}

impl Trellis {
    fn new() -> Self {
        let mut next = [[0u8; 2]; N_STATES];
        let mut out = [[0u8; 2]; N_STATES];
        for s in 0..N_STATES {
            for b in 0..2usize {
                let reg = ((b as u8) << 6) | s as u8;
                let o0 = (reg & G0).count_ones() as u8 & 1;
                let o1 = (reg & G1).count_ones() as u8 & 1;
                next[s][b] = reg >> 1;
                out[s][b] = (o0 << 1) | o1;
            }
        }
        Trellis { next, out }
    }

    fn shared() -> &'static Trellis {
        use std::sync::OnceLock;
        static T: OnceLock<Trellis> = OnceLock::new();
        T.get_or_init(Trellis::new)
    }
}

/// Errors from Viterbi decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViterbiError {
    /// The soft input length is odd or shorter than the tail.
    BadInputLength(usize),
}

impl std::fmt::Display for ViterbiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViterbiError::BadInputLength(n) => {
                write!(f, "soft input length {n} is not a valid coded length")
            }
        }
    }
}

impl std::error::Error for ViterbiError {}

/// Decodes a rate-1/2 soft stream (LLR per coded bit, erasures as 0.0).
///
/// `soft.len()` must be even and correspond to at least the 6 tail bits.
/// Returns the decoded data bits **without** the tail.
///
/// # Examples
///
/// ```
/// use jmb_phy::{convcode, viterbi};
///
/// let data = vec![1, 0, 1, 1, 0, 1, 0, 0];
/// let coded = convcode::encode(&data);
/// // Perfect soft values: +1 for coded 0, -1 for coded 1.
/// let soft: Vec<f64> = coded.iter().map(|&b| if b == 0 { 1.0 } else { -1.0 }).collect();
/// assert_eq!(viterbi::decode(&soft).unwrap(), data);
/// ```
pub fn decode(soft: &[f64]) -> Result<Vec<u8>, ViterbiError> {
    if !soft.len().is_multiple_of(2) || soft.len() / 2 < TAIL_BITS {
        return Err(ViterbiError::BadInputLength(soft.len()));
    }
    let n_steps = soft.len() / 2;
    let trellis = Trellis::shared();

    const NEG_INF: f64 = f64::NEG_INFINITY;
    let mut metric = [NEG_INF; N_STATES];
    metric[0] = 0.0; // encoder starts in state 0
    let mut new_metric = [NEG_INF; N_STATES];
    // decisions[t][next_state] = (prev_state, input_bit) packed: bit7 = input,
    // low 6 bits = prev state.
    let mut decisions = vec![[0u8; N_STATES]; n_steps];

    for t in 0..n_steps {
        let l0 = soft[2 * t];
        let l1 = soft[2 * t + 1];
        // Per-output-bit metric contribution: bit value 0 earns +l, 1 earns −l.
        let bm = |out: u8| -> f64 {
            let m0 = if out & 0b10 == 0 { l0 } else { -l0 };
            let m1 = if out & 0b01 == 0 { l1 } else { -l1 };
            m0 + m1
        };
        new_metric.fill(NEG_INF);
        for (s, &m) in metric.iter().enumerate() {
            if m == NEG_INF {
                continue;
            }
            for b in 0..2usize {
                let ns = trellis.next[s][b] as usize;
                let cand = m + bm(trellis.out[s][b]);
                if cand > new_metric[ns] {
                    new_metric[ns] = cand;
                    decisions[t][ns] = ((b as u8) << 7) | s as u8;
                }
            }
        }
        metric.copy_from_slice(&new_metric);
    }

    // The tail flushes the encoder to state 0; terminate there. If state 0 is
    // unreachable (severe erasures), fall back to the best surviving state.
    let mut state = if metric[0] > NEG_INF {
        0usize
    } else {
        metric
            .iter()
            .enumerate()
            // total_cmp: a NaN metric (possible when upstream equalisation
            // divides by a spectral null) must yield a wrong pick that the
            // CRC rejects, never a decoder panic.
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    };

    let mut bits = vec![0u8; n_steps];
    for t in (0..n_steps).rev() {
        let d = decisions[t][state];
        bits[t] = d >> 7;
        state = (d & 0x3F) as usize;
    }
    bits.truncate(n_steps - TAIL_BITS);
    Ok(bits)
}

/// Hard-decision convenience wrapper: converts bits to ±1 soft values and
/// decodes.
pub fn decode_hard(coded: &[u8]) -> Result<Vec<u8>, ViterbiError> {
    let soft: Vec<f64> = coded
        .iter()
        .map(|&b| if b == 0 { 1.0 } else { -1.0 })
        .collect();
    decode(&soft)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convcode::{depuncture, encode, puncture};
    use crate::rates::CodeRate;

    fn to_soft(coded: &[u8]) -> Vec<f64> {
        coded
            .iter()
            .map(|&b| if b == 0 { 1.0 } else { -1.0 })
            .collect()
    }

    #[test]
    fn noiseless_roundtrip() {
        let data: Vec<u8> = (0..100).map(|i| ((i * 31 + 7) % 2) as u8).collect();
        let coded = encode(&data);
        assert_eq!(decode(&to_soft(&coded)).unwrap(), data);
    }

    #[test]
    fn hard_decision_roundtrip() {
        let data: Vec<u8> = (0..64).map(|i| ((i >> 2) % 2) as u8).collect();
        let coded = encode(&data);
        assert_eq!(decode_hard(&coded).unwrap(), data);
    }

    #[test]
    fn corrects_scattered_bit_flips() {
        // The free distance of (133,171) is 10: up to 4 substitutions in a
        // window are correctable; scattered errors certainly are.
        let data: Vec<u8> = (0..200).map(|i| ((i * 13 + 5) % 2) as u8).collect();
        let mut coded = encode(&data);
        for &pos in &[10usize, 57, 130, 260, 333] {
            coded[pos] ^= 1;
        }
        assert_eq!(decode(&to_soft(&coded)).unwrap(), data);
    }

    #[test]
    fn soft_information_beats_hard() {
        // A weakly-received (low |LLR|) wrong bit should be overridden by
        // strong neighbours.
        let data = vec![1u8, 1, 0, 1, 0, 0, 1, 0, 1, 1];
        let coded = encode(&data);
        let mut soft = to_soft(&coded);
        // Flip the sign of one bit but make it low confidence.
        soft[7] = -soft[7] * 0.05;
        assert_eq!(decode(&soft).unwrap(), data);
    }

    #[test]
    fn punctured_roundtrip_all_rates() {
        let data: Vec<u8> = (0..120).map(|i| ((i * 29 + 1) % 2) as u8).collect();
        let coded = encode(&data);
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let punct = puncture(&coded, rate);
            let soft = to_soft(&punct);
            let restored = depuncture(&soft, rate, coded.len());
            assert_eq!(decode(&restored).unwrap(), data, "rate {rate:?}");
        }
    }

    #[test]
    fn punctured_with_errors() {
        let data: Vec<u8> = (0..150).map(|i| ((i * 17) % 2) as u8).collect();
        let coded = encode(&data);
        let mut punct = puncture(&coded, CodeRate::ThreeQuarters);
        punct[40] ^= 1;
        punct[200] ^= 1;
        let soft = to_soft(&punct);
        let restored = depuncture(&soft, CodeRate::ThreeQuarters, coded.len());
        assert_eq!(decode(&restored).unwrap(), data);
    }

    #[test]
    fn empty_data_roundtrip() {
        // Only tail bits.
        let coded = encode(&[]);
        assert_eq!(decode(&to_soft(&coded)).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn rejects_bad_lengths() {
        assert!(matches!(
            decode(&[1.0; 7]),
            Err(ViterbiError::BadInputLength(7))
        ));
        assert!(matches!(
            decode(&[1.0; 4]),
            Err(ViterbiError::BadInputLength(4))
        ));
    }

    #[test]
    fn all_erasures_decodes_to_something_sane() {
        // With zero information everywhere, the decoder must still terminate
        // and produce the right length (contents are arbitrary but valid bits).
        let n_data = 20;
        let coded_len = 2 * (n_data + TAIL_BITS);
        let soft = vec![0.0; coded_len];
        let out = decode(&soft).unwrap();
        assert_eq!(out.len(), n_data);
        assert!(out.iter().all(|&b| b <= 1));
    }

    #[test]
    fn awgn_ber_better_than_uncoded() {
        // Crude end-to-end sanity: at ~4 dB Eb/N0 the coded system over BPSK
        // should be essentially error-free for short blocks while uncoded
        // would not be. Uses a tiny deterministic LCG as the noise source to
        // avoid a rand dev-dependency in this unit test.
        let mut lcg: u64 = 0x1234_5678;
        let mut noise = || {
            // Sum of 12 uniforms ≈ N(0,1).
            let mut acc = 0.0f64;
            for _ in 0..12 {
                lcg = lcg
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                acc += (lcg >> 11) as f64 / (1u64 << 53) as f64;
            }
            acc - 6.0
        };
        let data: Vec<u8> = (0..500).map(|i| ((i * 37 + 11) % 2) as u8).collect();
        let coded = encode(&data);
        let sigma = 0.5; // Es/N0 = 1/(2σ²) = 2 → 3 dB per coded bit
        let soft: Vec<f64> = coded
            .iter()
            .map(|&b| {
                let tx = if b == 0 { 1.0 } else { -1.0 };
                2.0 * (tx + sigma * noise()) / (sigma * sigma)
            })
            .collect();
        let decoded = decode(&soft).unwrap();
        let errors = decoded.iter().zip(&data).filter(|(a, b)| a != b).count();
        assert_eq!(errors, 0, "{errors} bit errors after decoding");
    }
}
