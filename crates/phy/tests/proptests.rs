//! Property-based tests for the PHY's codec invariants: every transmit
//! transform must invert exactly, and the error-detecting layers must
//! reject corruption.

use jmb_phy::interleaver::Interleaver;
use jmb_phy::modulation::Modulation;
use jmb_phy::params::OfdmParams;
use jmb_phy::rates::{CodeRate, Mcs};
use jmb_phy::scrambler::Scrambler;
use jmb_phy::{convcode, crc, viterbi};
use proptest::prelude::*;

fn bits(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..2, n)
}

proptest! {
    #[test]
    fn scrambler_is_involution(data in bits(0..512), seed in 1u8..128) {
        let mut s1 = Scrambler::new(seed);
        let scrambled = s1.scramble(&data);
        let mut s2 = Scrambler::new(seed);
        prop_assert_eq!(s2.scramble(&scrambled), data);
    }

    #[test]
    fn viterbi_inverts_encoder(data in bits(1..300)) {
        let coded = convcode::encode(&data);
        prop_assert_eq!(viterbi::decode_hard(&coded).unwrap(), data);
    }

    #[test]
    fn viterbi_inverts_through_puncturing(
        data in bits(12..240),
        rate_idx in 0usize..3,
    ) {
        let rate = [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters][rate_idx];
        let coded = convcode::encode(&data);
        let punctured = convcode::puncture(&coded, rate);
        let soft: Vec<f64> = punctured.iter().map(|&b| if b == 0 { 1.0 } else { -1.0 }).collect();
        let restored = convcode::depuncture(&soft, rate, coded.len());
        prop_assert_eq!(viterbi::decode(&restored).unwrap(), data);
    }

    #[test]
    fn viterbi_corrects_single_error(data in bits(20..100), pos_frac in 0.0..1.0f64) {
        let mut coded = convcode::encode(&data);
        let pos = ((coded.len() - 1) as f64 * pos_frac) as usize;
        coded[pos] ^= 1;
        prop_assert_eq!(viterbi::decode_hard(&coded).unwrap(), data);
    }

    #[test]
    fn interleaver_bijective_for_all_modulations(mod_idx in 0usize..4) {
        let m = [Modulation::Bpsk, Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64][mod_idx];
        let p = OfdmParams::default();
        let il = Interleaver::new(&p, m);
        let input: Vec<u32> = (0..il.block_len() as u32).collect();
        prop_assert_eq!(il.deinterleave(&il.interleave(&input)), input);
    }

    #[test]
    fn modulation_roundtrip(mod_idx in 0usize..4, data in bits(0..20)) {
        let m = [Modulation::Bpsk, Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64][mod_idx];
        let bps = m.bits_per_symbol();
        let usable = data.len() / bps * bps;
        let trimmed = &data[..usable];
        let syms = m.map_stream(trimmed);
        let mut recovered = Vec::new();
        for s in syms {
            recovered.extend(m.demap_hard(s));
        }
        prop_assert_eq!(recovered, trimmed.to_vec());
    }

    #[test]
    fn soft_llr_signs_consistent_with_hard(
        mod_idx in 0usize..4,
        re in -2.0..2.0f64,
        im in -2.0..2.0f64,
    ) {
        // At any received point, the sign of each LLR must agree with the
        // hard decision's bit (0 ⇒ positive LLR).
        let m = [Modulation::Bpsk, Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64][mod_idx];
        let y = jmb_dsp::Complex64::new(re, im);
        let hard = m.demap_hard(y);
        let soft = m.demap_soft(y, 0.1, 1.0);
        for (bit, llr) in hard.iter().zip(&soft) {
            if llr.abs() > 1e-9 {
                prop_assert_eq!(*bit == 0, *llr > 0.0, "bit {} llr {}", bit, llr);
            }
        }
    }

    #[test]
    fn crc_roundtrip_and_detection(payload in prop::collection::vec(any::<u8>(), 0..200)) {
        let framed = crc::append_crc(&payload);
        prop_assert_eq!(crc::check_and_strip_crc(&framed), Some(&payload[..]));
    }

    #[test]
    fn crc_rejects_any_single_byte_corruption(
        payload in prop::collection::vec(any::<u8>(), 1..100),
        idx_frac in 0.0..1.0f64,
        flip in 1u8..=255,
    ) {
        let mut framed = crc::append_crc(&payload);
        let idx = ((framed.len() - 1) as f64 * idx_frac) as usize;
        framed[idx] ^= flip;
        prop_assert_eq!(crc::check_and_strip_crc(&framed), None);
    }

    #[test]
    fn frame_loopback_any_payload(
        payload in prop::collection::vec(any::<u8>(), 0..300),
        mcs_idx in 0usize..8,
    ) {
        // The full PHY chain is a lossless channel for any payload at any
        // MCS when the medium is clean.
        let params = OfdmParams::default();
        let tx = jmb_phy::FrameTx::new(params.clone());
        let rx = jmb_phy::FrameRx::new(params);
        let mcs = Mcs::ALL[mcs_idx];
        let wave = tx.tx_frame(mcs, &payload).unwrap();
        let got = rx.rx_frame(&wave).unwrap();
        prop_assert_eq!(got.payload, payload);
        prop_assert_eq!(got.mcs, mcs);
    }

    #[test]
    fn effective_snr_flat_identity(snr in 3.0..25.0f64, mcs_idx in 0usize..8) {
        let mcs = Mcs::ALL[mcs_idx];
        let eff = jmb_phy::esnr::effective_snr_db_eesm(mcs, &vec![snr; 48]);
        prop_assert!((eff - snr).abs() < 1e-6, "flat channel: {} vs {}", eff, snr);
    }

    #[test]
    fn effective_snr_never_exceeds_max_subcarrier(
        snrs in prop::collection::vec(-10.0..30.0f64, 4..52),
        mcs_idx in 0usize..8,
    ) {
        let mcs = Mcs::ALL[mcs_idx];
        let eff = jmb_phy::esnr::effective_snr_db_eesm(mcs, &snrs);
        let max = snrs.iter().cloned().fold(f64::MIN, f64::max);
        let min = snrs.iter().cloned().fold(f64::MAX, f64::min);
        prop_assert!(eff <= max + 1e-6, "eff {} above max {}", eff, max);
        prop_assert!(eff >= min - 1e-6, "eff {} below min {}", eff, min);
    }
}
