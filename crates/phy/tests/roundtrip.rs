//! Per-rate roundtrip tests of the full PHY bit pipeline: for **every**
//! supported MCS, the transmit-side transforms (CRC framing → scrambler →
//! convolutional code + puncturing → interleaver → constellation mapping)
//! must invert exactly through their receive-side counterparts, and the
//! error-detecting layers must reject single-bit corruption.
//!
//! Complements `proptests.rs`, which checks the stages in isolation; here
//! the stages are *composed* per MCS so a rate-dependent mismatch between
//! any two adjacent stages (e.g. puncturing vs interleaver block padding)
//! cannot hide.

use jmb_phy::interleaver::Interleaver;
use jmb_phy::params::OfdmParams;
use jmb_phy::rates::Mcs;
use jmb_phy::scrambler::Scrambler;
use jmb_phy::{convcode, crc, viterbi};
use proptest::prelude::*;

/// MSB-first byte→bit expansion (the inverse of [`bits_to_bytes`]).
fn bytes_to_bits(bytes: &[u8]) -> Vec<u8> {
    bytes
        .iter()
        .flat_map(|&b| (0..8).rev().map(move |i| (b >> i) & 1))
        .collect()
}

fn bits_to_bytes(bits: &[u8]) -> Vec<u8> {
    assert_eq!(bits.len() % 8, 0);
    bits.chunks(8)
        .map(|c| c.iter().fold(0u8, |acc, &b| (acc << 1) | b))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline roundtrip: CRC-framed random payloads survive the whole
    /// scramble → encode → puncture → interleave → deinterleave →
    /// depuncture → Viterbi → descramble chain at every supported rate.
    #[test]
    fn bit_pipeline_inverts_at_every_rate(
        payload in prop::collection::vec(any::<u8>(), 1..120),
        seed in 1u8..128,
    ) {
        let params = OfdmParams::default();
        for mcs in Mcs::ALL {
            let framed = crc::append_crc(&payload);
            let bits = bytes_to_bits(&framed);
            let scrambled = Scrambler::new(seed).scramble(&bits);
            let coded = convcode::encode(&scrambled);
            let punctured = convcode::puncture(&coded, mcs.code_rate);

            // Pad to whole interleaver blocks, as the framer does, then
            // interleave/deinterleave symbol blocks of this MCS's width.
            let il = Interleaver::new(&params, mcs.modulation);
            let block = il.block_len();
            let mut padded = punctured.clone();
            padded.resize(punctured.len().div_ceil(block) * block, 0);
            let deinterleaved = il.deinterleave_stream(&il.interleave_stream(&padded));
            prop_assert_eq!(&deinterleaved, &padded, "interleaver not bijective at {:?}", mcs);

            // Hard bits → soft LLRs → depuncture → Viterbi.
            let soft: Vec<f64> = deinterleaved[..punctured.len()]
                .iter()
                .map(|&b| if b == 0 { 1.0 } else { -1.0 })
                .collect();
            let restored = convcode::depuncture(&soft, mcs.code_rate, coded.len());
            let decoded = viterbi::decode(&restored).unwrap();
            prop_assert_eq!(&decoded, &scrambled, "Viterbi mismatch at {:?}", mcs);

            let descrambled = Scrambler::new(seed).scramble(&decoded);
            let bytes = bits_to_bytes(&descrambled);
            prop_assert_eq!(
                crc::check_and_strip_crc(&bytes),
                Some(&payload[..]),
                "CRC did not validate after the full chain at {:?}",
                mcs
            );
        }
    }

    /// Constellation mapping is exact under high-SNR perturbation: a
    /// received point displaced by far less than half the minimum
    /// constellation distance demaps to the transmitted bits for every
    /// modulation used by any supported rate.
    #[test]
    fn modulation_demaps_exactly_at_high_snr(
        data in prop::collection::vec(0u8..2, 0..96),
        dx in -0.02..0.02f64,
        dy in -0.02..0.02f64,
    ) {
        for mcs in Mcs::ALL {
            let m = mcs.modulation;
            let bps = m.bits_per_symbol();
            let usable = data.len() / bps * bps;
            let trimmed = &data[..usable];
            let noise = jmb_dsp::Complex64::new(dx, dy);
            let mut recovered = Vec::new();
            for s in m.map_stream(trimmed) {
                recovered.extend(m.demap_hard(s + noise));
            }
            prop_assert_eq!(&recovered[..], trimmed, "demap not exact for {:?}", m);
        }
    }

    /// CRC-32 detects every single-**bit** flip anywhere in the framed
    /// payload (stricter than the byte-level corruption test in
    /// `proptests.rs`: a burst hides more than one flipped bit can).
    #[test]
    fn crc_rejects_any_single_bit_flip(
        payload in prop::collection::vec(any::<u8>(), 1..80),
        idx_frac in 0.0..1.0f64,
        bit in 0u8..8,
    ) {
        let mut framed = crc::append_crc(&payload);
        let idx = ((framed.len() - 1) as f64 * idx_frac) as usize;
        framed[idx] ^= 1 << bit;
        prop_assert_eq!(crc::check_and_strip_crc(&framed), None);
    }

    /// The scrambler is an involution on exact payload-sized bit streams
    /// for every seed — so the same construction used per rate in the
    /// pipeline test descrambles losslessly.
    #[test]
    fn scrambler_involution_every_seed(data in prop::collection::vec(0u8..2, 0..256)) {
        for seed in 1u8..128 {
            let once = Scrambler::new(seed).scramble(&data);
            let twice = Scrambler::new(seed).scramble(&once);
            prop_assert_eq!(&twice, &data, "seed {} not an involution", seed);
        }
    }
}
