//! Property-based bit-exactness proof for the vectorised Viterbi decoder.
//!
//! `viterbi::decode` (lane-oriented add-compare-select over a flat decision
//! buffer) must return *exactly* the bits of `viterbi::decode_reference`
//! (the straightforward per-state scan kept as the executable spec) for any
//! admissible soft input — not just agree on clean streams. These properties
//! drive both decoders through every MCS's code rate with random payloads,
//! heavy Gaussian-ish noise, erasures, spectral nulls (`-inf`), and NaN
//! metrics, and require bitwise-equal output on all of them.

use jmb_phy::convcode;
use jmb_phy::rates::Mcs;
use jmb_phy::viterbi::{self, ViterbiScratch};
use proptest::prelude::*;

/// Encode → puncture (at the MCS's code rate) → BPSK-style soft mapping with
/// additive noise → depuncture, i.e. exactly the stream shape the frame
/// decoder hands to the Viterbi stage.
fn noisy_depunctured_stream(data: &[u8], mcs: Mcs, noise: &[f64], scale: f64) -> Vec<f64> {
    let coded = convcode::encode(data);
    let punctured = convcode::puncture(&coded, mcs.code_rate);
    let soft: Vec<f64> = punctured
        .iter()
        .zip(noise.iter().cycle())
        .map(|(&b, &n)| if b == 0 { 1.0 } else { -1.0 } + scale * n)
        .collect();
    convcode::depuncture(&soft, mcs.code_rate, coded.len())
}

proptest! {
    /// All 8 MCS rates, random payloads, random noise amplitude: the fast
    /// decoder's bits are the reference decoder's bits.
    #[test]
    fn fast_decoder_matches_reference_all_mcs(
        data in prop::collection::vec(0u8..2, 1..400),
        noise in prop::collection::vec(-1.0..1.0f64, 16..64),
        mcs_idx in 0usize..8,
        scale in 0.0..3.0f64,
    ) {
        let mcs = Mcs::ALL[mcs_idx];
        let soft = noisy_depunctured_stream(&data, mcs, &noise, scale);
        prop_assert_eq!(
            viterbi::decode(&soft).unwrap(),
            viterbi::decode_reference(&soft).unwrap()
        );
    }

    /// Pathological metrics: random positions replaced by NaN (demapper
    /// guard rails) or -inf (spectral nulls / erasures). The fast path must
    /// make the same survivor choices as the reference scan, including the
    /// unreached-state convention.
    #[test]
    fn fast_decoder_matches_reference_with_nan_and_nulls(
        data in prop::collection::vec(0u8..2, 1..200),
        noise in prop::collection::vec(-1.0..1.0f64, 16..64),
        mcs_idx in 0usize..8,
        poison in prop::collection::vec((0.0..1.0f64, 0usize..3), 0..40),
    ) {
        let mcs = Mcs::ALL[mcs_idx];
        let mut soft = noisy_depunctured_stream(&data, mcs, &noise, 1.5);
        for &(frac, kind) in &poison {
            let idx = ((soft.len() - 1) as f64 * frac) as usize;
            soft[idx] = match kind {
                0 => f64::NAN,
                1 => f64::NEG_INFINITY,
                _ => 0.0, // hard erasure
            };
        }
        prop_assert_eq!(
            viterbi::decode(&soft).unwrap(),
            viterbi::decode_reference(&soft).unwrap()
        );
    }

    /// Scratch reuse across calls of wildly different lengths never leaks
    /// state: decoding with a shared scratch equals decoding fresh.
    #[test]
    fn scratch_reuse_is_stateless_across_lengths(
        lens in prop::collection::vec(7usize..250, 1..6),
        noise in prop::collection::vec(-2.0..2.0f64, 32..96),
    ) {
        let mut scratch = ViterbiScratch::new();
        for (i, &n_data) in lens.iter().enumerate() {
            let data: Vec<u8> = (0..n_data).map(|b| ((b * 7 + i) % 2) as u8).collect();
            let soft = noisy_depunctured_stream(&data, Mcs::ALL[i % 8], &noise, 1.0);
            let mut out = Vec::new();
            viterbi::decode_with(&soft, &mut scratch, &mut out).unwrap();
            prop_assert_eq!(out, viterbi::decode_reference(&soft).unwrap());
        }
    }
}
