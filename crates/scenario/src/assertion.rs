//! Assertion evaluation: metrics thresholds and trace predicates.
//!
//! Assertions never panic — each evaluates to an [`AssertionOutcome`]
//! carrying the observed value, and the runner folds outcomes into the
//! scenario verdict. This is the load-bearing difference from
//! `jmb_obs::TraceQuery`'s `assert_*` chainers (which are for tests):
//! a failed scenario assertion is a *result*, exit code 1, with the
//! evidence in `result.json`.

use crate::manifest::Assertion;
use jmb_obs::Event;

/// Every trace event kind a `count`/`respond` assertion may name.
///
/// Kept in sync with `jmb_obs::EventKind` by a test that parses the enum
/// out of `crates/obs/src/event.rs` (the same source of truth the repo's
/// `trace-taxonomy-complete` lint uses).
pub const KNOWN_EVENT_KINDS: &[&str] = &[
    "Transmit",
    "Render",
    "Dropped",
    "Corrupted",
    "Enqueued",
    "LeadElected",
    "BatchSelected",
    "Acked",
    "Retry",
    "ApDown",
    "ApUp",
    "SyncMissed",
    "CsiStale",
    "RemeasureScheduled",
    "RemeasureFailed",
    "RemeasureOk",
    "MeasurementLost",
    "ApDegraded",
    "SyncStrategySwitched",
    "ApRestored",
    "CellStarted",
    "CellInterference",
    "CellFinished",
    "ScenarioStarted",
    "ScenarioAssertion",
    "ScenarioStopped",
];

/// Metrics available in every run (single-cell and city alike).
pub const COMMON_METRICS: &[&str] = &[
    "goodput_mbps",
    "offered_mbps",
    "generated",
    "delivered",
    "dropped",
    "retries",
    "queued_at_end",
    "median_latency_ms",
    "p99_latency_ms",
    "jain",
    "delivery_ratio",
    "sync_misses",
    "remeasure_ok",
    "remeasure_failed",
    "aps_degraded",
    "aps_restored",
    "csi_stale",
];

/// Metrics that only exist in single-cell runs. `goodput_vs_clean` is the
/// degrade-not-stall ratio: the faulted run's goodput over a fault-free
/// reference run with the same seed (1.0 = no degradation).
pub const SINGLE_METRICS: &[&str] = &["goodput_vs_clean"];

/// Metrics that only exist in city runs.
pub const CITY_METRICS: &[&str] = &["area_capacity_mbps_km2", "mean_inr_db"];

/// Every metric name a `metric` assertion may use.
pub const KNOWN_METRICS: &[&str] = &[
    "goodput_mbps",
    "offered_mbps",
    "generated",
    "delivered",
    "dropped",
    "retries",
    "queued_at_end",
    "median_latency_ms",
    "p99_latency_ms",
    "jain",
    "delivery_ratio",
    "sync_misses",
    "remeasure_ok",
    "remeasure_failed",
    "aps_degraded",
    "aps_restored",
    "csi_stale",
    "goodput_vs_clean",
    "area_capacity_mbps_km2",
    "mean_inr_db",
];

/// One assertion's result: the manifest text, what was observed, and
/// whether it held.
#[derive(Debug, Clone, PartialEq)]
pub struct AssertionOutcome {
    /// Index in manifest declaration order.
    pub index: usize,
    /// The assertion's canonical text.
    pub text: String,
    /// Whether it held.
    pub passed: bool,
    /// The observed value: the metric, the event count, or (for
    /// `respond`) the number of unanswered triggers.
    pub actual: f64,
}

/// Evaluates one assertion against the run's metrics table and trace.
///
/// `metrics` maps metric name → value (the same table `result.json`
/// prints); `events` is the recorded trace in (time, seq) order;
/// `horizon_s` is the last simulated instant the trace covers — `respond`
/// triggers whose deadline extends past it are not judged (the response
/// may simply not have been observable).
pub fn evaluate(
    index: usize,
    a: &Assertion,
    metrics: &[(String, f64)],
    events: &[Event],
    horizon_s: f64,
) -> AssertionOutcome {
    let (passed, actual) = match a {
        Assertion::Metric { name, op, value } => {
            let actual = metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or(f64::NAN);
            (actual.is_finite() && op.holds(actual, *value), actual)
        }
        Assertion::Count {
            kind,
            op,
            value,
            window,
        } => {
            let n = events
                .iter()
                .filter(|e| {
                    e.kind.name() == kind && window.is_none_or(|(t0, t1)| e.t >= t0 && e.t <= t1)
                })
                .count() as u64;
            (op.holds(n as f64, *value as f64), n as f64)
        }
        Assertion::Respond { from, to, within_s } => {
            let mut unanswered = 0u64;
            for (i, e) in events.iter().enumerate() {
                if e.kind.name() != from {
                    continue;
                }
                let deadline = e.t + within_s;
                if deadline > horizon_s {
                    // The trace ends before the response was due; not a
                    // violation, just unobservable.
                    continue;
                }
                let answered = events[i + 1..]
                    .iter()
                    .take_while(|r| r.t <= deadline)
                    .any(|r| to.iter().any(|k| r.kind.name() == k));
                if !answered {
                    unanswered += 1;
                }
            }
            (unanswered == 0, unanswered as f64)
        }
    };
    AssertionOutcome {
        index,
        text: a.text(),
        passed,
        actual,
    }
}

/// Evaluates every assertion in manifest order.
pub fn evaluate_all(
    assertions: &[Assertion],
    metrics: &[(String, f64)],
    events: &[Event],
    horizon_s: f64,
) -> Vec<AssertionOutcome> {
    assertions
        .iter()
        .enumerate()
        .map(|(i, a)| evaluate(i, a, metrics, events, horizon_s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Op;
    use jmb_obs::EventKind;

    fn ev(seq: u64, t: f64, kind: EventKind) -> Event {
        Event { seq, t, kind }
    }

    fn sample_events() -> Vec<Event> {
        vec![
            ev(0, 0.00, EventKind::ScenarioStarted { assertions: 2 }),
            ev(
                1,
                0.01,
                EventKind::RemeasureScheduled {
                    at: 0.02,
                    attempt: 1,
                },
            ),
            ev(2, 0.02, EventKind::RemeasureOk { attempt: 1 }),
            ev(
                3,
                0.05,
                EventKind::RemeasureScheduled {
                    at: 0.06,
                    attempt: 1,
                },
            ),
            ev(4, 0.30, EventKind::ApDown { ap: 0 }),
            ev(5, 0.50, EventKind::ApUp { ap: 0 }),
        ]
    }

    #[test]
    fn metric_assertions_compare() {
        let metrics = vec![("jain".to_string(), 0.9)];
        let a = Assertion::Metric {
            name: "jain".into(),
            op: Op::Ge,
            value: 0.8,
        };
        let out = evaluate(0, &a, &metrics, &[], 1.0);
        assert!(out.passed);
        assert_eq!(out.actual, 0.9);
        let a = Assertion::Metric {
            name: "jain".into(),
            op: Op::Ge,
            value: 0.95,
        };
        assert!(!evaluate(0, &a, &metrics, &[], 1.0).passed);
        // A metric missing from the table fails rather than passing
        // vacuously.
        let a = Assertion::Metric {
            name: "goodput_mbps".into(),
            op: Op::Le,
            value: 1e9,
        };
        assert!(!evaluate(0, &a, &metrics, &[], 1.0).passed);
    }

    #[test]
    fn count_assertions_filter_kind_and_window() {
        let events = sample_events();
        let a = Assertion::Count {
            kind: "RemeasureScheduled".into(),
            op: Op::Eq,
            value: 2,
            window: None,
        };
        let out = evaluate(0, &a, &[], &events, 1.0);
        assert!(out.passed, "actual {}", out.actual);
        let a = Assertion::Count {
            kind: "RemeasureScheduled".into(),
            op: Op::Eq,
            value: 1,
            window: Some((0.0, 0.03)),
        };
        assert!(evaluate(0, &a, &[], &events, 1.0).passed);
        let a = Assertion::Count {
            kind: "ApDown".into(),
            op: Op::Gt,
            value: 1,
            window: None,
        };
        assert!(!evaluate(0, &a, &[], &events, 1.0).passed);
    }

    #[test]
    fn respond_assertions_track_deadlines() {
        let events = sample_events();
        // First trigger (t=0.01) answered at 0.02; second (t=0.05) never
        // answered, deadline 0.15 < horizon ⇒ one violation.
        let a = Assertion::Respond {
            from: "RemeasureScheduled".into(),
            to: vec!["RemeasureOk".into(), "RemeasureFailed".into()],
            within_s: 0.1,
        };
        let out = evaluate(0, &a, &[], &events, 1.0);
        assert!(!out.passed);
        assert_eq!(out.actual, 1.0);
        // With a horizon that ends before the second deadline, the
        // unanswerable trigger is skipped and the assertion holds.
        let out = evaluate(0, &a, &[], &events, 0.1);
        assert!(out.passed, "actual {}", out.actual);
        // ApDown answered by ApUp within 0.25 s.
        let a = Assertion::Respond {
            from: "ApDown".into(),
            to: vec!["ApUp".into()],
            within_s: 0.25,
        };
        assert!(evaluate(0, &a, &[], &events, 1.0).passed);
    }

    /// The hand-maintained kind list matches the real `EventKind` enum:
    /// parse the variant names straight out of `crates/obs/src/event.rs`
    /// the same way the `trace-taxonomy-complete` lint does.
    #[test]
    fn known_event_kinds_match_the_enum() {
        let src = include_str!("../../obs/src/event.rs");
        let mut parsed: Vec<&str> = Vec::new();
        for line in src.lines() {
            let t = line.trim();
            // name() arms: `EventKind::Variant { .. } => "Variant",`
            if let Some(rest) = t.strip_prefix("EventKind::") {
                if let Some((variant, tail)) = rest.split_once(|c: char| !c.is_alphanumeric()) {
                    if tail.contains("=>") && tail.contains(&format!("\"{variant}\"")) {
                        parsed.push(variant);
                    }
                }
            }
        }
        // Extract from the actual source so additions fail loudly here.
        let mut known: Vec<&str> = KNOWN_EVENT_KINDS.to_vec();
        known.sort_unstable();
        parsed.sort_unstable();
        parsed.dedup();
        assert_eq!(known, parsed, "KNOWN_EVENT_KINDS drifted from EventKind");
    }

    #[test]
    fn metric_tables_are_consistent() {
        for m in COMMON_METRICS
            .iter()
            .chain(SINGLE_METRICS)
            .chain(CITY_METRICS)
        {
            assert!(KNOWN_METRICS.contains(m), "{m} missing from KNOWN_METRICS");
        }
        assert_eq!(
            KNOWN_METRICS.len(),
            COMMON_METRICS.len() + SINGLE_METRICS.len() + CITY_METRICS.len()
        );
    }
}
