//! Typed errors for manifest loading and scenario execution.
//!
//! Everything here maps to exit code 2 ([`crate::EXIT_INVALID`]): a
//! scenario that *ran* reports its outcome through
//! [`crate::report::Verdict`] instead (assertion failures are code 1,
//! limit stops code 3) — an error means the run could not meaningfully
//! start.

use std::fmt;

/// Why a manifest could not be loaded or executed.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A syntax or per-line semantic problem, with its 1-based line
    /// number: unknown section, unknown key, malformed value,
    /// out-of-range probability, empty fault window, unknown metric or
    /// event-kind name.
    Parse {
        /// 1-based line number in the manifest text.
        line: usize,
        /// What is wrong with the line.
        message: String,
    },
    /// A cross-section semantic problem with no single offending line
    /// (missing required section, a fault schedule on a backend that has
    /// no fault hook, a city grid with per-run limits it cannot honour).
    Invalid(String),
    /// The manifest file (or an output artifact) could not be read or
    /// written.
    Io(String),
    /// The simulation itself refused to build or run (backend
    /// construction, config validation below the manifest layer).
    Sim(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse { line, message } => write!(f, "line {line}: {message}"),
            ScenarioError::Invalid(m) => write!(f, "invalid manifest: {m}"),
            ScenarioError::Io(m) => write!(f, "io error: {m}"),
            ScenarioError::Sim(m) => write!(f, "simulation error: {m}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<std::io::Error> for ScenarioError {
    fn from(e: std::io::Error) -> Self {
        ScenarioError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_line() {
        let e = ScenarioError::Parse {
            line: 7,
            message: "unknown key `sausages`".into(),
        };
        assert_eq!(e.to_string(), "line 7: unknown key `sausages`");
        assert!(ScenarioError::Invalid("x".into())
            .to_string()
            .contains("invalid"));
    }
}
