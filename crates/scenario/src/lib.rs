//! # jmb-scenario — declarative, assertion-gated headless runs
//!
//! A scenario is a small text manifest describing one complete robustness
//! experiment: a topology (single cell or city grid), a channel backend, a
//! traffic mix, a fault schedule (loss storms, AP outages), resource
//! limits, and a set of pass/fail assertions over the run's metrics and
//! event trace. The `jmb-scenario run` binary executes a manifest headless
//! and emits a machine-readable `result.json` plus the full JSONL trace,
//! exiting with a standardized code so CI can gate on a checked-in corpus
//! (`scenarios/*.scn`) without any bespoke glue per experiment.
//!
//! The shape follows lab-protocol runners (versioned declarative input,
//! limits, assertions, stable artifacts): everything a run needs is in the
//! manifest, nothing about the outcome depends on the host — same manifest
//! + same seed ⇒ byte-identical `result.json`, across runs and `--threads`.
//!
//! Exit codes are part of the contract:
//!
//! | code | meaning |
//! |------|---------|
//! | [`EXIT_PASS`] (0) | every assertion held |
//! | [`EXIT_ASSERTION`] (1) | the run completed but an assertion failed |
//! | [`EXIT_INVALID`] (2) | the manifest (or CLI) is invalid |
//! | [`EXIT_LIMIT`] (3) | a resource limit stopped the run early |
//!
//! All limit and fault terminations flow through typed errors and
//! [`report::Verdict`] values — the runner never panics, so the repo's
//! hot-path lint covers this crate too.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assertion;
pub mod error;
pub mod manifest;
pub mod report;
pub mod runner;

pub use assertion::{AssertionOutcome, KNOWN_EVENT_KINDS, KNOWN_METRICS};
pub use error::ScenarioError;
pub use manifest::{
    ArrivalSpec, Assertion, Backend, FaultKnobs, FaultSpec, Limits, Manifest, Op, OutageSpec,
    PacketSpec, Topology, TrafficSpec, WindowSpec,
};
pub use report::{ScenarioReport, Verdict};
pub use runner::{run_manifest, RunOptions, RunOutput};

pub use jmb_obs::SyncStrategyId;

/// Every assertion held.
pub const EXIT_PASS: i32 = 0;
/// The run completed but at least one assertion failed.
pub const EXIT_ASSERTION: i32 = 1;
/// The manifest (or the CLI invocation) is invalid.
pub const EXIT_INVALID: i32 = 2;
/// A resource limit stopped the run before it completed.
pub const EXIT_LIMIT: i32 = 3;
