//! `jmb-scenario` — run declarative scenario manifests headless.
//!
//! ```text
//! jmb-scenario run <manifest.scn> [--out DIR] [--seed N] [--threads N]
//! jmb-scenario check <manifest.scn>
//! ```
//!
//! `run` executes the manifest and writes `result.json` + `trace.jsonl`
//! into the output directory (default `results/scenario/<name>`), then
//! exits 0 (pass), 1 (assertion failed), 2 (invalid manifest/CLI), or 3
//! (resource limit hit). `check` parses and validates only.

use jmb_scenario::{
    run_manifest, Manifest, RunOptions, ScenarioError, ScenarioReport, EXIT_INVALID, EXIT_PASS,
};
use std::path::{Path, PathBuf};

const USAGE: &str = "\
usage: jmb-scenario run <manifest.scn> [--out DIR] [--seed N] [--threads N]
       jmb-scenario check <manifest.scn>

exit codes: 0 pass | 1 assertion failed | 2 invalid manifest or CLI | 3 limit exceeded";

fn main() {
    std::process::exit(real_main(&std::env::args().skip(1).collect::<Vec<_>>()));
}

fn real_main(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("--help") | Some("-h") => {
            println!("{USAGE}");
            EXIT_PASS
        }
        Some(other) => {
            eprintln!("error: unknown command `{other}`\n{USAGE}");
            EXIT_INVALID
        }
        None => {
            eprintln!("{USAGE}");
            EXIT_INVALID
        }
    }
}

struct RunArgs {
    manifest: PathBuf,
    out: Option<PathBuf>,
    seed: Option<u64>,
    threads: Option<usize>,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut manifest: Option<PathBuf> = None;
    let mut out = None;
    let mut seed = None;
    let mut threads = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                let v = it.next().ok_or("--out needs a directory")?;
                out = Some(PathBuf::from(v));
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = Some(v.parse().map_err(|_| format!("bad --seed `{v}`"))?);
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let t: usize = v.parse().map_err(|_| format!("bad --threads `{v}`"))?;
                if t == 0 {
                    return Err("--threads must be at least 1".into());
                }
                threads = Some(t);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => {
                if manifest.is_some() {
                    return Err(format!("unexpected extra argument `{path}`"));
                }
                manifest = Some(PathBuf::from(path));
            }
        }
    }
    Ok(RunArgs {
        manifest: manifest.ok_or("missing manifest path")?,
        out,
        seed,
        threads,
    })
}

/// The artifact directory for a manifest: `--out` if given, else
/// `results/scenario/<file stem>`.
fn out_dir(args: &RunArgs) -> PathBuf {
    match &args.out {
        Some(d) => d.clone(),
        None => {
            let stem = args
                .manifest
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "scenario".to_string());
            Path::new("results").join("scenario").join(stem)
        }
    }
}

fn load(path: &Path) -> Result<Manifest, ScenarioError> {
    let text = std::fs::read_to_string(path)?;
    Manifest::parse(&text)
}

/// Writes `result.json` (+ optionally `trace.jsonl`) into `dir`. Failures
/// here are reported but do not change the verdict-derived exit code —
/// except that an unwritable result for a *passing* run is still a
/// failure the caller must see, so IO errors map to exit 2.
fn write_artifacts(
    dir: &Path,
    report_json: &str,
    trace_jsonl: Option<&str>,
) -> Result<(), ScenarioError> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("result.json"), report_json)?;
    if let Some(t) = trace_jsonl {
        std::fs::write(dir.join("trace.jsonl"), t)?;
    }
    Ok(())
}

fn stem_of(path: &Path) -> String {
    path.file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "scenario".to_string())
}

fn cmd_run(args: &[String]) -> i32 {
    let args = match parse_run_args(args) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return EXIT_INVALID;
        }
    };
    let dir = out_dir(&args);
    let manifest = match load(&args.manifest) {
        Ok(m) => m,
        Err(e) => {
            // Even a manifest that never ran leaves a machine-readable
            // record for CI to upload.
            let report = ScenarioReport::invalid(&stem_of(&args.manifest), &e);
            let _ = write_artifacts(&dir, &report.to_json(), None);
            eprintln!("error: {e}");
            return EXIT_INVALID;
        }
    };
    let opts = RunOptions {
        seed: args.seed,
        threads: args.threads,
    };
    match run_manifest(&manifest, &opts) {
        Ok(out) => {
            if let Err(e) = write_artifacts(&dir, &out.report.to_json(), Some(&out.trace_jsonl)) {
                eprintln!("error: {e}");
                return EXIT_INVALID;
            }
            let r = &out.report;
            println!(
                "{}: {} (seed {}, {} events, stop {}); artifacts in {}",
                r.name,
                r.verdict.name(),
                r.seed,
                r.events,
                r.stop_cause.name(),
                dir.display()
            );
            for a in &r.assertions {
                println!(
                    "  [{}] {} — {} (actual {})",
                    a.index,
                    a.text,
                    if a.passed { "pass" } else { "FAIL" },
                    a.actual
                );
            }
            r.verdict.exit_code()
        }
        Err(e) => {
            let report = ScenarioReport::invalid(&manifest.name, &e);
            let _ = write_artifacts(&dir, &report.to_json(), None);
            eprintln!("error: {e}");
            EXIT_INVALID
        }
    }
}

fn cmd_check(args: &[String]) -> i32 {
    let [path] = args else {
        eprintln!("error: check takes exactly one manifest path\n{USAGE}");
        return EXIT_INVALID;
    };
    match load(Path::new(path)) {
        Ok(m) => {
            println!(
                "ok: {} ({} assertions, {} fault windows, {} outages)",
                m.name,
                m.assertions.len(),
                m.faults.windows.len(),
                m.faults.outages.len()
            );
            EXIT_PASS
        }
        Err(e) => {
            eprintln!("error: {e}");
            EXIT_INVALID
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_args_parse_and_reject() {
        let ok = parse_run_args(&[
            "a.scn".into(),
            "--seed".into(),
            "3".into(),
            "--threads".into(),
            "4".into(),
        ])
        .unwrap();
        assert_eq!(ok.seed, Some(3));
        assert_eq!(ok.threads, Some(4));
        assert!(parse_run_args(&["--seed".into()]).is_err());
        assert!(parse_run_args(&["a".into(), "b".into()]).is_err());
        assert!(parse_run_args(&["--bogus".into()]).is_err());
        assert!(parse_run_args(&[]).is_err());
    }

    #[test]
    fn default_out_dir_uses_the_stem() {
        let a = parse_run_args(&["scenarios/stadium.scn".into()]).unwrap();
        assert_eq!(
            out_dir(&a),
            Path::new("results").join("scenario").join("stadium")
        );
    }

    #[test]
    fn unknown_command_is_invalid() {
        assert_eq!(real_main(&["frobnicate".into()]), EXIT_INVALID);
        assert_eq!(real_main(&[]), EXIT_INVALID);
        assert_eq!(real_main(&["--help".into()]), EXIT_PASS);
    }
}
