//! The manifest model and its hand-rolled parser/serializer.
//!
//! A manifest is a line-oriented text format: a header (`version`, `name`,
//! `seed`), then bracketed sections. `#` starts a comment, blank lines are
//! ignored, keys and values are whitespace-separated. The parser reports
//! every unknown section, unknown key, malformed value, out-of-range
//! probability, and unknown metric/event-kind name with its 1-based line
//! number — silent acceptance is a bug class this format refuses to have.
//!
//! [`Manifest::to_text`] is the canonical serializer: parsing its output
//! yields an equal [`Manifest`] (pinned by a property test), which is what
//! makes manifests safe to generate, normalize, and diff.
//!
//! ```text
//! version 1
//! name example
//! seed 1
//!
//! [topology]
//! kind single
//! aps 4
//! clients 4
//! snr_db 28
//!
//! [channel]
//! backend fast
//!
//! [sync]
//! strategy jmb-lead-slave
//!
//! [traffic]
//! arrival poisson 2000
//! packet fixed 1500
//! duration_s 0.2
//! drain_s 0.1
//!
//! [faults]
//! sync_loss 0.05
//! window 0.05 0.1 sync_loss=0.5 slave=1:0.9
//! outage ap=0 from=0.08 until=0.12
//!
//! [limits]
//! max_sim_time_s 5
//! max_events 2000000
//! wall_clock_s 60
//!
//! [assertions]
//! metric delivery_ratio >= 0.75
//! count ApDown == 1 in 0.0..0.5
//! respond RemeasureScheduled -> RemeasureOk|RemeasureFailed within 0.1
//! ```

use crate::assertion::{KNOWN_EVENT_KINDS, KNOWN_METRICS};
use crate::error::ScenarioError;
use jmb_obs::SyncStrategyId;
use std::fmt::Write as _;

/// Comparison operator in an assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `>=`
    Ge,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `==`
    Eq,
}

impl Op {
    /// The operator's surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            Op::Ge => ">=",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Lt => "<",
            Op::Eq => "==",
        }
    }

    /// Parses the surface syntax.
    pub fn from_symbol(s: &str) -> Option<Op> {
        match s {
            ">=" => Some(Op::Ge),
            "<=" => Some(Op::Le),
            ">" => Some(Op::Gt),
            "<" => Some(Op::Lt),
            "==" => Some(Op::Eq),
            _ => None,
        }
    }

    /// Applies the comparison.
    pub fn holds(self, actual: f64, bound: f64) -> bool {
        match self {
            Op::Ge => actual >= bound,
            Op::Le => actual <= bound,
            Op::Gt => actual > bound,
            Op::Lt => actual < bound,
            Op::Eq => actual == bound,
        }
    }
}

/// Which PHY serves the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Per-subcarrier [`jmb_traffic::FastBackend`] — the default; supports
    /// fault schedules and per-client SNR lists.
    #[default]
    Fast,
    /// Sample-level [`jmb_traffic::SampleBackend`] — full OFDM + CRC
    /// validation; no fault-schedule hook, scalar SNR only.
    Sample,
}

/// The deployment under test.
#[derive(Debug, Clone, PartialEq)]
pub enum Topology {
    /// One cell: `aps × clients`, with one SNR per client (a single value
    /// is replicated to every client).
    Single {
        /// Number of APs.
        aps: usize,
        /// Number of clients.
        clients: usize,
        /// Per-client SNR, dB (length 1 or `clients`).
        snr_db: Vec<f64>,
    },
    /// A `cols × rows` city grid of cells with frequency reuse; co-channel
    /// cells interfere (the city layer models the leakage).
    City {
        /// Grid columns.
        cols: usize,
        /// Grid rows.
        rows: usize,
        /// Frequency reuse factor (1, 3, or 7).
        reuse: u32,
        /// APs per cell.
        aps_per_cell: usize,
        /// Clients per cell.
        clients_per_cell: usize,
        /// Cell spacing, metres.
        spacing_m: f64,
        /// Client SNR, dB (scalar — every client in every cell).
        snr_db: f64,
    },
}

/// One client's arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalSpec {
    /// Memoryless arrivals.
    Poisson {
        /// Mean rate, packets/second.
        rate_pps: f64,
    },
    /// Bursty on/off arrivals.
    OnOff {
        /// In-burst rate, packets/second.
        burst_pps: f64,
        /// Mean ON duration, seconds.
        on_s: f64,
        /// Mean OFF duration, seconds.
        off_s: f64,
    },
}

/// Packet-size distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PacketSpec {
    /// Every packet the same size, bytes.
    Fixed(usize),
    /// Uniform in `[min, max]` bytes.
    Uniform {
        /// Smallest packet, bytes.
        min: usize,
        /// Largest packet, bytes.
        max: usize,
    },
    /// Internet mix: small with probability `p_small`, else large.
    Bimodal {
        /// Small-packet size, bytes.
        small: usize,
        /// Large-packet size, bytes.
        large: usize,
        /// Probability of a small packet.
        p_small: f64,
    },
}

/// The offered load and run horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSpec {
    /// Arrival process (same for every client).
    pub arrival: ArrivalSpec,
    /// Packet sizes.
    pub packet: PacketSpec,
    /// Load-generation horizon, seconds.
    pub duration_s: f64,
    /// Queue-drain grace after the horizon, seconds.
    pub drain_s: f64,
}

/// Fault probabilities for one config (the base, or one window's).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultKnobs {
    /// Transmission drop probability.
    pub drop: f64,
    /// Payload corruption probability.
    pub corrupt: f64,
    /// Sync-header loss probability (every slave).
    pub sync_loss: f64,
    /// Measurement-frame loss probability.
    pub meas_loss: f64,
    /// Per-slave sync-loss overrides `(ap, probability)`.
    pub per_slave: Vec<(usize, f64)>,
}

impl FaultKnobs {
    /// True when every probability is zero.
    pub fn is_clean(&self) -> bool {
        self.drop == 0.0
            && self.corrupt == 0.0
            && self.sync_loss == 0.0
            && self.meas_loss == 0.0
            && self.per_slave.iter().all(|&(_, p)| p == 0.0)
    }
}

/// A fault storm window `[from_s, until_s)` (the schedule's half-open
/// last-added-wins semantics — see `jmb_sim::FaultSchedule`).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSpec {
    /// Window start (inclusive), seconds.
    pub from_s: f64,
    /// Window end (exclusive), seconds.
    pub until_s: f64,
    /// The probabilities in effect inside the window.
    pub knobs: FaultKnobs,
}

/// A scheduled AP outage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageSpec {
    /// Which AP fails.
    pub ap: usize,
    /// Failure time, seconds.
    pub from_s: f64,
    /// Recovery time, seconds.
    pub until_s: f64,
}

/// The whole `[faults]` section.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    /// Probabilities outside every window.
    pub base: FaultKnobs,
    /// Storm windows, in declaration order (last added wins).
    pub windows: Vec<WindowSpec>,
    /// AP outages.
    pub outages: Vec<OutageSpec>,
}

impl FaultSpec {
    /// True when the section would change nothing: no probabilities, no
    /// windows, no outages.
    pub fn is_empty(&self) -> bool {
        self.base.is_clean() && self.windows.is_empty() && self.outages.is_empty()
    }
}

/// Resource limits for the run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Limits {
    /// Simulated-time budget, seconds.
    pub max_sim_time_s: Option<f64>,
    /// Processed-event budget.
    pub max_events: Option<u64>,
    /// Wall-clock budget, seconds (graceful early stop, not a kill).
    pub wall_clock_s: Option<f64>,
}

/// One pass/fail condition over the finished run.
#[derive(Debug, Clone, PartialEq)]
pub enum Assertion {
    /// `metric NAME OP VALUE` — compare a named metric (see
    /// [`KNOWN_METRICS`]).
    Metric {
        /// Metric name.
        name: String,
        /// Comparison.
        op: Op,
        /// Bound.
        value: f64,
    },
    /// `count KIND OP N [in T0..T1]` — compare the number of trace events
    /// of one kind, optionally restricted to a time window.
    Count {
        /// Event-kind name (see [`KNOWN_EVENT_KINDS`]).
        kind: String,
        /// Comparison.
        op: Op,
        /// Bound.
        value: u64,
        /// Optional `[t0, t1]` restriction, seconds.
        window: Option<(f64, f64)>,
    },
    /// `respond FROM -> TO|TO2 within S` — every `FROM` event must be
    /// followed by one of the `TO` kinds within `S` seconds (triggers too
    /// close to the end of the trace to be judged are skipped).
    Respond {
        /// Triggering event kind.
        from: String,
        /// Acceptable responses (any one suffices).
        to: Vec<String>,
        /// Response deadline, seconds.
        within_s: f64,
    },
}

impl Assertion {
    /// The assertion's canonical surface syntax (what `result.json` and
    /// the serializer print).
    pub fn text(&self) -> String {
        match self {
            Assertion::Metric { name, op, value } => {
                format!("metric {name} {} {value}", op.symbol())
            }
            Assertion::Count {
                kind,
                op,
                value,
                window,
            } => match window {
                Some((t0, t1)) => format!("count {kind} {} {value} in {t0}..{t1}", op.symbol()),
                None => format!("count {kind} {} {value}", op.symbol()),
            },
            Assertion::Respond { from, to, within_s } => {
                format!("respond {from} -> {} within {within_s}", to.join("|"))
            }
        }
    }
}

/// A parsed, validated scenario manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Format version (currently always 1).
    pub version: u32,
    /// Scenario name (used in artifacts; `[A-Za-z0-9._-]+`).
    pub name: String,
    /// Default master seed (overridable on the CLI).
    pub seed: u64,
    /// Deployment under test.
    pub topology: Topology,
    /// PHY backend.
    pub backend: Backend,
    /// Inter-AP synchronization strategy.
    pub sync: SyncStrategyId,
    /// Offered load and horizon.
    pub traffic: TrafficSpec,
    /// Fault schedule.
    pub faults: FaultSpec,
    /// Resource limits.
    pub limits: Limits,
    /// Pass/fail conditions, in declaration order.
    pub assertions: Vec<Assertion>,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn perr(line: usize, message: impl Into<String>) -> ScenarioError {
    ScenarioError::Parse {
        line,
        message: message.into(),
    }
}

fn parse_f64(line: usize, what: &str, s: &str) -> Result<f64, ScenarioError> {
    let v: f64 = s
        .parse()
        .map_err(|_| perr(line, format!("{what}: `{s}` is not a number")))?;
    if !v.is_finite() {
        return Err(perr(line, format!("{what}: `{s}` must be finite")));
    }
    Ok(v)
}

fn parse_u64(line: usize, what: &str, s: &str) -> Result<u64, ScenarioError> {
    s.parse()
        .map_err(|_| perr(line, format!("{what}: `{s}` is not a non-negative integer")))
}

fn parse_usize(line: usize, what: &str, s: &str) -> Result<usize, ScenarioError> {
    s.parse()
        .map_err(|_| perr(line, format!("{what}: `{s}` is not a non-negative integer")))
}

fn parse_prob(line: usize, what: &str, s: &str) -> Result<f64, ScenarioError> {
    let p = parse_f64(line, what, s)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(perr(line, format!("{what}: {p} outside [0, 1]")));
    }
    Ok(p)
}

/// `ap=N`, `from=T` style pair.
fn split_kv(line: usize, tok: &str) -> Result<(&str, &str), ScenarioError> {
    tok.split_once('=')
        .ok_or_else(|| perr(line, format!("expected key=value, got `{tok}`")))
}

/// `slave=N:P` payload.
fn parse_slave(line: usize, v: &str) -> Result<(usize, f64), ScenarioError> {
    let (ap, p) = v
        .split_once(':')
        .ok_or_else(|| perr(line, format!("slave override needs AP:PROB, got `{v}`")))?;
    Ok((
        parse_usize(line, "slave AP index", ap)?,
        parse_prob(line, "slave sync-loss probability", p)?,
    ))
}

fn parse_event_kind(line: usize, s: &str) -> Result<String, ScenarioError> {
    if KNOWN_EVENT_KINDS.contains(&s) {
        Ok(s.to_string())
    } else {
        Err(perr(line, format!("unknown event kind `{s}`")))
    }
}

#[derive(Default)]
struct SingleDraft {
    aps: Option<usize>,
    clients: Option<usize>,
    snr_db: Option<Vec<f64>>,
}

#[derive(Default)]
struct CityDraft {
    cols: Option<usize>,
    rows: Option<usize>,
    reuse: Option<u32>,
    aps_per_cell: Option<usize>,
    clients_per_cell: Option<usize>,
    spacing_m: Option<f64>,
    snr_db: Option<f64>,
}

enum TopoDraft {
    Unset,
    Single(SingleDraft),
    City(CityDraft),
}

#[derive(Default)]
struct TrafficDraft {
    arrival: Option<ArrivalSpec>,
    packet: Option<PacketSpec>,
    duration_s: Option<f64>,
    drain_s: Option<f64>,
}

#[derive(Clone, Copy, PartialEq)]
enum Section {
    Header,
    Topology,
    Channel,
    Sync,
    Traffic,
    Faults,
    Limits,
    Assertions,
}

impl Manifest {
    /// Parses manifest text, reporting every problem with its line number.
    pub fn parse(text: &str) -> Result<Manifest, ScenarioError> {
        let mut section = Section::Header;
        let mut seen: Vec<&'static str> = Vec::new();

        let mut version: Option<u32> = None;
        let mut name: Option<String> = None;
        let mut seed: u64 = 1;
        let mut topo = TopoDraft::Unset;
        let mut backend = Backend::Fast;
        let mut sync = SyncStrategyId::default();
        let mut traffic = TrafficDraft::default();
        let mut faults = FaultSpec::default();
        let mut limits = Limits::default();
        let mut assertions: Vec<Assertion> = Vec::new();

        for (i, raw) in text.lines().enumerate() {
            let ln = i + 1;
            let line = match raw.find('#') {
                Some(p) => &raw[..p],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }

            if let Some(sec) = line.strip_prefix('[') {
                let sec = sec
                    .strip_suffix(']')
                    .ok_or_else(|| perr(ln, format!("unterminated section header `{line}`")))?;
                let (tag, next) = match sec {
                    "topology" => ("topology", Section::Topology),
                    "channel" => ("channel", Section::Channel),
                    "sync" => ("sync", Section::Sync),
                    "traffic" => ("traffic", Section::Traffic),
                    "faults" => ("faults", Section::Faults),
                    "limits" => ("limits", Section::Limits),
                    "assertions" => ("assertions", Section::Assertions),
                    other => return Err(perr(ln, format!("unknown section `[{other}]`"))),
                };
                if seen.contains(&tag) {
                    return Err(perr(ln, format!("duplicate section `[{tag}]`")));
                }
                seen.push(tag);
                section = next;
                continue;
            }

            let mut toks = line.split_whitespace();
            // A non-empty line always has a first token.
            let key = toks.next().unwrap_or_default();
            let rest: Vec<&str> = toks.collect();
            let one = |what: &str| -> Result<&str, ScenarioError> {
                match rest.as_slice() {
                    [v] => Ok(v),
                    _ => Err(perr(ln, format!("`{key}` needs exactly one {what}"))),
                }
            };

            match section {
                Section::Header => match key {
                    "version" => {
                        let v = parse_u64(ln, "version", one("value")?)?;
                        if v != 1 {
                            return Err(perr(ln, format!("unsupported manifest version {v}")));
                        }
                        version = Some(1);
                    }
                    "name" => {
                        let v = one("value")?;
                        if !v
                            .bytes()
                            .all(|b| b.is_ascii_alphanumeric() || b"._-".contains(&b))
                        {
                            return Err(perr(
                                ln,
                                format!("name `{v}` must be [A-Za-z0-9._-]+ (it names artifacts)"),
                            ));
                        }
                        name = Some(v.to_string());
                    }
                    "seed" => seed = parse_u64(ln, "seed", one("value")?)?,
                    other => {
                        return Err(perr(
                            ln,
                            format!("unknown header key `{other}` (expected version/name/seed)"),
                        ))
                    }
                },
                Section::Topology => match (key, &mut topo) {
                    ("kind", TopoDraft::Unset) => match one("value")? {
                        "single" => topo = TopoDraft::Single(SingleDraft::default()),
                        "city" => topo = TopoDraft::City(CityDraft::default()),
                        other => {
                            return Err(perr(
                                ln,
                                format!("unknown topology kind `{other}` (single|city)"),
                            ))
                        }
                    },
                    ("kind", _) => return Err(perr(ln, "duplicate `kind`")),
                    (_, TopoDraft::Unset) => {
                        return Err(perr(ln, "`kind single|city` must come first in [topology]"))
                    }
                    (k, TopoDraft::Single(d)) => match k {
                        "aps" => d.aps = Some(parse_usize(ln, "aps", one("value")?)?),
                        "clients" => d.clients = Some(parse_usize(ln, "clients", one("value")?)?),
                        "snr_db" => {
                            let mut v = Vec::new();
                            for part in one("value")?.split(',') {
                                v.push(parse_f64(ln, "snr_db", part)?);
                            }
                            d.snr_db = Some(v);
                        }
                        other => {
                            return Err(perr(ln, format!("unknown single-cell key `{other}`")))
                        }
                    },
                    (k, TopoDraft::City(d)) => match k {
                        "cols" => d.cols = Some(parse_usize(ln, "cols", one("value")?)?),
                        "rows" => d.rows = Some(parse_usize(ln, "rows", one("value")?)?),
                        "reuse" => {
                            let r = parse_u64(ln, "reuse", one("value")?)? as u32;
                            if ![1, 3, 7].contains(&r) {
                                return Err(perr(ln, format!("reuse must be 1, 3 or 7, got {r}")));
                            }
                            d.reuse = Some(r);
                        }
                        "aps_per_cell" => {
                            d.aps_per_cell = Some(parse_usize(ln, "aps_per_cell", one("value")?)?)
                        }
                        "clients_per_cell" => {
                            d.clients_per_cell =
                                Some(parse_usize(ln, "clients_per_cell", one("value")?)?)
                        }
                        "spacing_m" => {
                            d.spacing_m = Some(parse_f64(ln, "spacing_m", one("value")?)?)
                        }
                        "snr_db" => d.snr_db = Some(parse_f64(ln, "snr_db", one("value")?)?),
                        other => return Err(perr(ln, format!("unknown city key `{other}`"))),
                    },
                },
                Section::Channel => match key {
                    "backend" => match one("value")? {
                        "fast" => backend = Backend::Fast,
                        "sample" => backend = Backend::Sample,
                        other => {
                            return Err(perr(
                                ln,
                                format!("unknown backend `{other}` (fast|sample)"),
                            ))
                        }
                    },
                    other => return Err(perr(ln, format!("unknown channel key `{other}`"))),
                },
                Section::Sync => match key {
                    "strategy" => {
                        let v = one("value")?;
                        sync = SyncStrategyId::from_token(v).ok_or_else(|| {
                            let known: Vec<&str> =
                                SyncStrategyId::ALL.iter().map(|s| s.token()).collect();
                            perr(
                                ln,
                                format!("unknown sync strategy `{v}` ({})", known.join("|")),
                            )
                        })?;
                    }
                    other => return Err(perr(ln, format!("unknown sync key `{other}`"))),
                },
                Section::Traffic => match key {
                    "arrival" => {
                        traffic.arrival = Some(match rest.as_slice() {
                            ["poisson", r] => ArrivalSpec::Poisson {
                                rate_pps: parse_f64(ln, "poisson rate", r)?,
                            },
                            ["onoff", b, on, off] => ArrivalSpec::OnOff {
                                burst_pps: parse_f64(ln, "burst rate", b)?,
                                on_s: parse_f64(ln, "mean ON duration", on)?,
                                off_s: parse_f64(ln, "mean OFF duration", off)?,
                            },
                            _ => {
                                return Err(perr(
                                    ln,
                                    "arrival needs `poisson RATE` or `onoff BURST ON OFF`",
                                ))
                            }
                        });
                    }
                    "packet" => {
                        traffic.packet = Some(match rest.as_slice() {
                            ["fixed", n] => PacketSpec::Fixed(parse_usize(ln, "packet size", n)?),
                            ["uniform", lo, hi] => PacketSpec::Uniform {
                                min: parse_usize(ln, "min packet size", lo)?,
                                max: parse_usize(ln, "max packet size", hi)?,
                            },
                            ["bimodal", s, l, p] => PacketSpec::Bimodal {
                                small: parse_usize(ln, "small packet size", s)?,
                                large: parse_usize(ln, "large packet size", l)?,
                                p_small: parse_prob(ln, "small-packet probability", p)?,
                            },
                            _ => {
                                return Err(perr(
                                    ln,
                                    "packet needs `fixed N`, `uniform MIN MAX` or \
                                     `bimodal SMALL LARGE P`",
                                ))
                            }
                        });
                    }
                    "duration_s" => {
                        traffic.duration_s = Some(parse_f64(ln, "duration_s", one("value")?)?)
                    }
                    "drain_s" => traffic.drain_s = Some(parse_f64(ln, "drain_s", one("value")?)?),
                    other => return Err(perr(ln, format!("unknown traffic key `{other}`"))),
                },
                Section::Faults => match key {
                    "drop" => faults.base.drop = parse_prob(ln, "drop", one("value")?)?,
                    "corrupt" => faults.base.corrupt = parse_prob(ln, "corrupt", one("value")?)?,
                    "sync_loss" => {
                        faults.base.sync_loss = parse_prob(ln, "sync_loss", one("value")?)?
                    }
                    "meas_loss" => {
                        faults.base.meas_loss = parse_prob(ln, "meas_loss", one("value")?)?
                    }
                    "slave" => faults.base.per_slave.push(parse_slave(ln, one("value")?)?),
                    "window" => {
                        if rest.len() < 2 {
                            return Err(perr(ln, "window needs `FROM UNTIL [k=v ...]`"));
                        }
                        let from_s = parse_f64(ln, "window start", rest[0])?;
                        let until_s = parse_f64(ln, "window end", rest[1])?;
                        if until_s <= from_s {
                            return Err(perr(
                                ln,
                                format!("window [{from_s}, {until_s}) is empty or inverted"),
                            ));
                        }
                        let mut knobs = FaultKnobs::default();
                        for tok in &rest[2..] {
                            let (k, v) = split_kv(ln, tok)?;
                            match k {
                                "drop" => knobs.drop = parse_prob(ln, "drop", v)?,
                                "corrupt" => knobs.corrupt = parse_prob(ln, "corrupt", v)?,
                                "sync_loss" => knobs.sync_loss = parse_prob(ln, "sync_loss", v)?,
                                "meas_loss" => knobs.meas_loss = parse_prob(ln, "meas_loss", v)?,
                                "slave" => knobs.per_slave.push(parse_slave(ln, v)?),
                                other => {
                                    return Err(perr(ln, format!("unknown window knob `{other}`")))
                                }
                            }
                        }
                        faults.windows.push(WindowSpec {
                            from_s,
                            until_s,
                            knobs,
                        });
                    }
                    "outage" => {
                        let (mut ap, mut from_s, mut until_s) = (None, None, None);
                        for tok in &rest {
                            let (k, v) = split_kv(ln, tok)?;
                            match k {
                                "ap" => ap = Some(parse_usize(ln, "outage AP", v)?),
                                "from" => from_s = Some(parse_f64(ln, "outage start", v)?),
                                "until" => until_s = Some(parse_f64(ln, "outage end", v)?),
                                other => {
                                    return Err(perr(ln, format!("unknown outage key `{other}`")))
                                }
                            }
                        }
                        match (ap, from_s, until_s) {
                            (Some(ap), Some(from_s), Some(until_s)) => {
                                if until_s <= from_s {
                                    return Err(perr(
                                        ln,
                                        format!(
                                            "outage [{from_s}, {until_s}) is empty or inverted"
                                        ),
                                    ));
                                }
                                faults.outages.push(OutageSpec {
                                    ap,
                                    from_s,
                                    until_s,
                                });
                            }
                            _ => return Err(perr(ln, "outage needs ap=N from=T until=T")),
                        }
                    }
                    other => return Err(perr(ln, format!("unknown faults key `{other}`"))),
                },
                Section::Limits => match key {
                    "max_sim_time_s" => {
                        let v = parse_f64(ln, "max_sim_time_s", one("value")?)?;
                        if v <= 0.0 {
                            return Err(perr(ln, "max_sim_time_s must be positive"));
                        }
                        limits.max_sim_time_s = Some(v);
                    }
                    "max_events" => {
                        limits.max_events = Some(parse_u64(ln, "max_events", one("value")?)?)
                    }
                    "wall_clock_s" => {
                        let v = parse_f64(ln, "wall_clock_s", one("value")?)?;
                        if v <= 0.0 {
                            return Err(perr(ln, "wall_clock_s must be positive"));
                        }
                        limits.wall_clock_s = Some(v);
                    }
                    other => return Err(perr(ln, format!("unknown limits key `{other}`"))),
                },
                Section::Assertions => match key {
                    "metric" => match rest.as_slice() {
                        [m, op, v] => {
                            if !KNOWN_METRICS.contains(m) {
                                return Err(perr(ln, format!("unknown metric `{m}`")));
                            }
                            let op = Op::from_symbol(op)
                                .ok_or_else(|| perr(ln, format!("unknown operator `{op}`")))?;
                            assertions.push(Assertion::Metric {
                                name: m.to_string(),
                                op,
                                value: parse_f64(ln, "metric bound", v)?,
                            });
                        }
                        _ => return Err(perr(ln, "metric needs `NAME OP VALUE`")),
                    },
                    "count" => {
                        let (head, window) = match rest.as_slice() {
                            [k, op, v] => ((k, op, v), None),
                            [k, op, v, "in", range] => {
                                let (t0, t1) = range.split_once("..").ok_or_else(|| {
                                    perr(ln, format!("count window needs T0..T1, got `{range}`"))
                                })?;
                                let t0 = parse_f64(ln, "count window start", t0)?;
                                let t1 = parse_f64(ln, "count window end", t1)?;
                                if t1 < t0 {
                                    return Err(perr(ln, "count window end before start"));
                                }
                                ((k, op, v), Some((t0, t1)))
                            }
                            _ => return Err(perr(ln, "count needs `KIND OP N [in T0..T1]`")),
                        };
                        let (k, op, v) = head;
                        let op = Op::from_symbol(op)
                            .ok_or_else(|| perr(ln, format!("unknown operator `{op}`")))?;
                        assertions.push(Assertion::Count {
                            kind: parse_event_kind(ln, k)?,
                            op,
                            value: parse_u64(ln, "count bound", v)?,
                            window,
                        });
                    }
                    "respond" => match rest.as_slice() {
                        [from, "->", to, "within", s] => {
                            let mut kinds = Vec::new();
                            for part in to.split('|') {
                                kinds.push(parse_event_kind(ln, part)?);
                            }
                            let within_s = parse_f64(ln, "respond deadline", s)?;
                            if within_s <= 0.0 {
                                return Err(perr(ln, "respond deadline must be positive"));
                            }
                            assertions.push(Assertion::Respond {
                                from: parse_event_kind(ln, from)?,
                                to: kinds,
                                within_s,
                            });
                        }
                        _ => {
                            return Err(perr(
                                ln,
                                "respond needs `FROM -> TO[|TO...] within SECONDS`",
                            ))
                        }
                    },
                    other => return Err(perr(ln, format!("unknown assertion form `{other}`"))),
                },
            }
        }

        let version = version.ok_or_else(|| missing("a `version 1` header line"))?;
        let name = name.ok_or_else(|| missing("a `name` header line"))?;
        let topology = match topo {
            TopoDraft::Unset => return Err(missing("a [topology] section")),
            TopoDraft::Single(d) => Topology::Single {
                aps: d.aps.ok_or_else(|| missing("topology `aps`"))?,
                clients: d.clients.ok_or_else(|| missing("topology `clients`"))?,
                snr_db: d.snr_db.ok_or_else(|| missing("topology `snr_db`"))?,
            },
            TopoDraft::City(d) => Topology::City {
                cols: d.cols.ok_or_else(|| missing("topology `cols`"))?,
                rows: d.rows.ok_or_else(|| missing("topology `rows`"))?,
                reuse: d.reuse.ok_or_else(|| missing("topology `reuse`"))?,
                aps_per_cell: d
                    .aps_per_cell
                    .ok_or_else(|| missing("topology `aps_per_cell`"))?,
                clients_per_cell: d
                    .clients_per_cell
                    .ok_or_else(|| missing("topology `clients_per_cell`"))?,
                spacing_m: d.spacing_m.ok_or_else(|| missing("topology `spacing_m`"))?,
                snr_db: d.snr_db.ok_or_else(|| missing("topology `snr_db`"))?,
            },
        };
        let traffic = TrafficSpec {
            arrival: traffic
                .arrival
                .ok_or_else(|| missing("traffic `arrival`"))?,
            packet: traffic.packet.ok_or_else(|| missing("traffic `packet`"))?,
            duration_s: traffic
                .duration_s
                .ok_or_else(|| missing("traffic `duration_s`"))?,
            drain_s: traffic.drain_s.unwrap_or(0.0),
        };

        let m = Manifest {
            version,
            name,
            seed,
            topology,
            backend,
            sync,
            traffic,
            faults,
            limits,
            assertions,
        };
        m.validate()?;
        Ok(m)
    }

    /// Cross-section semantic validation (everything the per-line parser
    /// cannot see). Called by [`Manifest::parse`]; public so generated
    /// manifests can be checked before serialization.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let inv = |m: String| Err(ScenarioError::Invalid(m));
        if self.traffic.duration_s <= 0.0 {
            return inv("traffic duration_s must be positive".into());
        }
        if self.traffic.drain_s < 0.0 {
            return inv("traffic drain_s must be non-negative".into());
        }
        match &self.topology {
            Topology::Single {
                aps,
                clients,
                snr_db,
            } => {
                if *aps == 0 || *clients == 0 {
                    return inv("single topology needs at least one AP and one client".into());
                }
                if snr_db.len() != 1 && snr_db.len() != *clients {
                    return inv(format!(
                        "snr_db lists {} values for {clients} clients (need 1 or {clients})",
                        snr_db.len()
                    ));
                }
                if self.backend == Backend::Sample && snr_db.len() > 1 {
                    return inv(
                        "the sample backend models one scalar client SNR; per-client \
                         lists need `backend fast`"
                            .into(),
                    );
                }
                for o in &self.faults.outages {
                    if o.ap >= *aps {
                        return inv(format!("outage names AP {} of {aps}", o.ap));
                    }
                }
            }
            Topology::City { cols, rows, .. } => {
                if *cols == 0 || *rows == 0 {
                    return inv("city topology needs at least one cell".into());
                }
                if self.backend == Backend::Sample {
                    return inv("city runs use the fast backend internally; \
                                `backend sample` is not available"
                        .into());
                }
                if self.sync != SyncStrategyId::default() {
                    return inv("city runs pin the paper's lead/slave resync; \
                                `[sync]` strategy selection needs a single-cell scenario"
                        .into());
                }
                if !self.faults.is_empty() {
                    return inv("city runs have no per-cell fault hook yet; \
                                move faults to a single-cell scenario"
                        .into());
                }
                if self.limits.max_events.is_some() || self.limits.wall_clock_s.is_some() {
                    return inv("city runs only honour max_sim_time_s \
                                (cells run as whole epochs)"
                        .into());
                }
                if !matches!(self.traffic.arrival, ArrivalSpec::Poisson { .. })
                    || !matches!(self.traffic.packet, PacketSpec::Fixed(_))
                {
                    return inv("city traffic is `arrival poisson` + `packet fixed` \
                                (the city layer owns per-cell load shaping)"
                        .into());
                }
            }
        }
        if self.backend == Backend::Sample
            && !(self.faults.base.is_clean() && self.faults.windows.is_empty())
        {
            return inv("the sample backend has no fault-schedule hook; \
                        fault probabilities and windows need `backend fast`"
                .into());
        }
        if self.backend == Backend::Sample && self.sync != SyncStrategyId::default() {
            return inv(
                "the sample backend renders the paper's in-band resync waveform; \
                        `[sync]` strategy selection needs `backend fast`"
                    .into(),
            );
        }
        if let PacketSpec::Uniform { min, max } = self.traffic.packet {
            if min == 0 || min > max {
                return inv(format!("uniform packet range [{min}, {max}] is invalid"));
            }
        }
        if let PacketSpec::Fixed(0) = self.traffic.packet {
            return inv("packets must be non-empty".into());
        }
        let city = matches!(self.topology, Topology::City { .. });
        for a in &self.assertions {
            if let Assertion::Metric { name, .. } = a {
                let city_only = crate::assertion::CITY_METRICS.contains(&name.as_str());
                let single_only = crate::assertion::SINGLE_METRICS.contains(&name.as_str());
                if city && single_only {
                    return inv(format!("metric `{name}` only exists in single-cell runs"));
                }
                if !city && city_only {
                    return inv(format!("metric `{name}` only exists in city runs"));
                }
            }
        }
        Ok(())
    }

    /// Canonical serialization: fixed section order, one key per line,
    /// floats in shortest-roundtrip form. `parse(to_text(m)) == m`.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        // Infallible: fmt::Write to String cannot fail.
        let _ = writeln!(s, "version {}", self.version);
        let _ = writeln!(s, "name {}", self.name);
        let _ = writeln!(s, "seed {}", self.seed);
        s.push_str("\n[topology]\n");
        match &self.topology {
            Topology::Single {
                aps,
                clients,
                snr_db,
            } => {
                s.push_str("kind single\n");
                let _ = writeln!(s, "aps {aps}");
                let _ = writeln!(s, "clients {clients}");
                let list: Vec<String> = snr_db.iter().map(|v| format!("{v}")).collect();
                let _ = writeln!(s, "snr_db {}", list.join(","));
            }
            Topology::City {
                cols,
                rows,
                reuse,
                aps_per_cell,
                clients_per_cell,
                spacing_m,
                snr_db,
            } => {
                s.push_str("kind city\n");
                let _ = writeln!(s, "cols {cols}");
                let _ = writeln!(s, "rows {rows}");
                let _ = writeln!(s, "reuse {reuse}");
                let _ = writeln!(s, "aps_per_cell {aps_per_cell}");
                let _ = writeln!(s, "clients_per_cell {clients_per_cell}");
                let _ = writeln!(s, "spacing_m {spacing_m}");
                let _ = writeln!(s, "snr_db {snr_db}");
            }
        }
        s.push_str("\n[channel]\n");
        let _ = writeln!(
            s,
            "backend {}",
            match self.backend {
                Backend::Fast => "fast",
                Backend::Sample => "sample",
            }
        );
        if self.sync != SyncStrategyId::default() {
            s.push_str("\n[sync]\n");
            let _ = writeln!(s, "strategy {}", self.sync.token());
        }
        s.push_str("\n[traffic]\n");
        match self.traffic.arrival {
            ArrivalSpec::Poisson { rate_pps } => {
                let _ = writeln!(s, "arrival poisson {rate_pps}");
            }
            ArrivalSpec::OnOff {
                burst_pps,
                on_s,
                off_s,
            } => {
                let _ = writeln!(s, "arrival onoff {burst_pps} {on_s} {off_s}");
            }
        }
        match self.traffic.packet {
            PacketSpec::Fixed(n) => {
                let _ = writeln!(s, "packet fixed {n}");
            }
            PacketSpec::Uniform { min, max } => {
                let _ = writeln!(s, "packet uniform {min} {max}");
            }
            PacketSpec::Bimodal {
                small,
                large,
                p_small,
            } => {
                let _ = writeln!(s, "packet bimodal {small} {large} {p_small}");
            }
        }
        let _ = writeln!(s, "duration_s {}", self.traffic.duration_s);
        let _ = writeln!(s, "drain_s {}", self.traffic.drain_s);
        if !self.faults.is_empty() {
            s.push_str("\n[faults]\n");
            push_knobs_lines(&mut s, &self.faults.base);
            for w in &self.faults.windows {
                let _ = write!(s, "window {} {}", w.from_s, w.until_s);
                push_knobs_kv(&mut s, &w.knobs);
                s.push('\n');
            }
            for o in &self.faults.outages {
                let _ = writeln!(
                    s,
                    "outage ap={} from={} until={}",
                    o.ap, o.from_s, o.until_s
                );
            }
        }
        if self.limits != Limits::default() {
            s.push_str("\n[limits]\n");
            if let Some(v) = self.limits.max_sim_time_s {
                let _ = writeln!(s, "max_sim_time_s {v}");
            }
            if let Some(v) = self.limits.max_events {
                let _ = writeln!(s, "max_events {v}");
            }
            if let Some(v) = self.limits.wall_clock_s {
                let _ = writeln!(s, "wall_clock_s {v}");
            }
        }
        if !self.assertions.is_empty() {
            s.push_str("\n[assertions]\n");
            for a in &self.assertions {
                let _ = writeln!(s, "{}", a.text());
            }
        }
        s
    }
}

fn missing(what: &str) -> ScenarioError {
    ScenarioError::Invalid(format!("manifest is missing {what}"))
}

fn push_knobs_lines(s: &mut String, k: &FaultKnobs) {
    if k.drop != 0.0 {
        let _ = writeln!(s, "drop {}", k.drop);
    }
    if k.corrupt != 0.0 {
        let _ = writeln!(s, "corrupt {}", k.corrupt);
    }
    if k.sync_loss != 0.0 {
        let _ = writeln!(s, "sync_loss {}", k.sync_loss);
    }
    if k.meas_loss != 0.0 {
        let _ = writeln!(s, "meas_loss {}", k.meas_loss);
    }
    for &(ap, p) in &k.per_slave {
        let _ = writeln!(s, "slave {ap}:{p}");
    }
}

fn push_knobs_kv(s: &mut String, k: &FaultKnobs) {
    if k.drop != 0.0 {
        let _ = write!(s, " drop={}", k.drop);
    }
    if k.corrupt != 0.0 {
        let _ = write!(s, " corrupt={}", k.corrupt);
    }
    if k.sync_loss != 0.0 {
        let _ = write!(s, " sync_loss={}", k.sync_loss);
    }
    if k.meas_loss != 0.0 {
        let _ = write!(s, " meas_loss={}", k.meas_loss);
    }
    for &(ap, p) in &k.per_slave {
        let _ = write!(s, " slave={ap}:{p}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
version 1
name demo
seed 7

[topology]
kind single
aps 4
clients 4
snr_db 28,22,16,10

[channel]
backend fast

[traffic]
arrival onoff 4000 0.02 0.03
packet bimodal 90 1500 0.3
duration_s 0.2
drain_s 0.1

[faults]
sync_loss 0.05
slave 2:0.2
window 0.05 0.1 sync_loss=0.5 slave=1:0.9
outage ap=0 from=0.08 until=0.12

[limits]
max_sim_time_s 5
max_events 2000000
wall_clock_s 60

[assertions]
metric delivery_ratio >= 0.75
count ApDown == 1 in 0.0..0.5
respond RemeasureScheduled -> RemeasureOk|RemeasureFailed within 0.1
";

    #[test]
    fn parses_the_kitchen_sink() {
        let m = Manifest::parse(GOOD).unwrap();
        assert_eq!(m.name, "demo");
        assert_eq!(m.seed, 7);
        assert_eq!(
            m.topology,
            Topology::Single {
                aps: 4,
                clients: 4,
                snr_db: vec![28.0, 22.0, 16.0, 10.0],
            }
        );
        assert_eq!(m.faults.base.sync_loss, 0.05);
        assert_eq!(m.faults.base.per_slave, vec![(2, 0.2)]);
        assert_eq!(m.faults.windows.len(), 1);
        assert_eq!(m.faults.windows[0].knobs.per_slave, vec![(1, 0.9)]);
        assert_eq!(m.faults.outages.len(), 1);
        assert_eq!(m.limits.max_events, Some(2_000_000));
        assert_eq!(m.assertions.len(), 3);
        assert_eq!(
            m.assertions[1],
            Assertion::Count {
                kind: "ApDown".into(),
                op: Op::Eq,
                value: 1,
                window: Some((0.0, 0.5)),
            }
        );
    }

    #[test]
    fn serializes_and_reparses_identically() {
        let m = Manifest::parse(GOOD).unwrap();
        let text = m.to_text();
        let again = Manifest::parse(&text).unwrap();
        assert_eq!(m, again);
        // And the canonical form is a fixpoint.
        assert_eq!(text, again.to_text());
    }

    fn line_of(err: ScenarioError) -> usize {
        match err {
            ScenarioError::Parse { line, .. } => line,
            other => panic!("expected a line-numbered parse error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_keys_and_sections_are_line_numbered() {
        let bad = GOOD.replace("backend fast", "backend fast\nmodulation qam");
        let err = Manifest::parse(&bad).unwrap_err();
        assert_eq!(line_of(err.clone()), 13);
        assert!(err.to_string().contains("modulation"));

        let bad = GOOD.replace("[limits]", "[limitz]");
        let err = Manifest::parse(&bad).unwrap_err();
        assert!(err.to_string().contains("unknown section"));

        let bad = GOOD.replace("sync_loss 0.05", "sync_loss 1.5");
        assert!(Manifest::parse(&bad)
            .unwrap_err()
            .to_string()
            .contains("outside [0, 1]"));

        let bad = GOOD.replace("window 0.05 0.1", "window 0.1 0.1");
        assert!(Manifest::parse(&bad)
            .unwrap_err()
            .to_string()
            .contains("empty or inverted"));

        let bad = GOOD.replace("count ApDown", "count ApExploded");
        assert!(Manifest::parse(&bad)
            .unwrap_err()
            .to_string()
            .contains("unknown event kind"));

        let bad = GOOD.replace("metric delivery_ratio", "metric vibes");
        assert!(Manifest::parse(&bad)
            .unwrap_err()
            .to_string()
            .contains("unknown metric"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let commented = format!("# header comment\n{}\n# trailing", GOOD);
        assert!(Manifest::parse(&commented).is_ok());
        let inline = GOOD.replace("seed 7", "seed 7   # lucky");
        assert_eq!(Manifest::parse(&inline).unwrap().seed, 7);
    }

    #[test]
    fn missing_required_pieces_are_invalid() {
        for cut in ["version 1", "name demo", "kind single", "duration_s 0.2"] {
            let bad: String =
                GOOD.lines()
                    .filter(|l| !l.starts_with(cut))
                    .fold(String::new(), |mut acc, l| {
                        acc.push_str(l);
                        acc.push('\n');
                        acc
                    });
            assert!(
                matches!(
                    Manifest::parse(&bad),
                    Err(ScenarioError::Invalid(_)) | Err(ScenarioError::Parse { .. })
                ),
                "parse succeeded without `{cut}`"
            );
        }
    }

    #[test]
    fn cross_section_rules() {
        // Sample backend rejects fault schedules.
        let bad = GOOD.replace("backend fast", "backend sample");
        assert!(matches!(
            Manifest::parse(&bad),
            Err(ScenarioError::Invalid(_))
        ));
        // Outage AP index must exist.
        let bad = GOOD.replace("outage ap=0", "outage ap=9");
        assert!(Manifest::parse(&bad)
            .unwrap_err()
            .to_string()
            .contains("AP 9"));
        // City topology rejects faults, extra limits, and fancy traffic.
        let city = "\
version 1
name c
[topology]
kind city
cols 2
rows 2
reuse 3
aps_per_cell 3
clients_per_cell 3
spacing_m 400
snr_db 25
[traffic]
arrival poisson 1500
packet fixed 1000
duration_s 0.1
";
        assert!(Manifest::parse(city).is_ok());
        let bad = format!("{city}[faults]\nsync_loss 0.1\n");
        assert!(matches!(
            Manifest::parse(&bad),
            Err(ScenarioError::Invalid(_))
        ));
        // City runs pin the paper's lead/slave sync.
        let bad = format!("{city}[sync]\nstrategy airsync-pilot\n");
        assert!(Manifest::parse(&bad)
            .unwrap_err()
            .to_string()
            .contains("single-cell"));
        let bad = format!("{city}[limits]\nmax_events 5\n");
        assert!(matches!(
            Manifest::parse(&bad),
            Err(ScenarioError::Invalid(_))
        ));
        let bad = city.replace("arrival poisson 1500", "arrival onoff 5000 0.01 0.01");
        assert!(matches!(
            Manifest::parse(&bad),
            Err(ScenarioError::Invalid(_))
        ));
        // Metric/topology mismatches are caught.
        let bad = format!("{city}[assertions]\nmetric goodput_vs_clean >= 0.5\n");
        assert!(Manifest::parse(&bad)
            .unwrap_err()
            .to_string()
            .contains("single-cell"));
        let bad = format!("{GOOD}metric area_capacity_mbps_km2 >= 1\n");
        assert!(Manifest::parse(&bad)
            .unwrap_err()
            .to_string()
            .contains("city"));
    }

    #[test]
    fn duplicate_sections_rejected() {
        let bad = format!("{GOOD}\n[limits]\nmax_events 5\n");
        assert!(Manifest::parse(&bad)
            .unwrap_err()
            .to_string()
            .contains("duplicate section"));
    }

    #[test]
    fn sync_section_parses_and_roundtrips() {
        // No [sync] block means the paper's lead/slave resync, and the
        // canonical form stays free of the section (existing corpus files
        // keep their bytes).
        let m = Manifest::parse(GOOD).unwrap();
        assert_eq!(m.sync, SyncStrategyId::JmbLeadSlave);
        assert!(!m.to_text().contains("[sync]"));

        for kind in [
            SyncStrategyId::AirSyncPilot,
            SyncStrategyId::ReciprocityImplicit,
        ] {
            let text = GOOD.replace(
                "[traffic]",
                &format!("[sync]\nstrategy {}\n\n[traffic]", kind.token()),
            );
            let m = Manifest::parse(&text).unwrap();
            assert_eq!(m.sync, kind);
            let canon = m.to_text();
            assert!(canon.contains(&format!("[sync]\nstrategy {}\n", kind.token())));
            assert_eq!(Manifest::parse(&canon).unwrap(), m);
            assert_eq!(Manifest::parse(&canon).unwrap().to_text(), canon);
        }
    }

    #[test]
    fn sync_section_diagnostics_are_line_numbered() {
        // `[traffic]` sits on line 14 of GOOD, so the spliced strategy
        // line lands on 15.
        let bad = GOOD.replace("[traffic]", "[sync]\nstrategy gps-disciplined\n\n[traffic]");
        let err = Manifest::parse(&bad).unwrap_err();
        assert_eq!(line_of(err.clone()), 15);
        let msg = err.to_string();
        assert!(
            msg.contains("gps-disciplined") && msg.contains("airsync-pilot"),
            "{msg}"
        );

        let bad = GOOD.replace("[traffic]", "[sync]\ninterval 5\n\n[traffic]");
        assert!(Manifest::parse(&bad)
            .unwrap_err()
            .to_string()
            .contains("unknown sync key"));

        let bad = GOOD.replace("[traffic]", "[sync]\n\n[sync]\n\n[traffic]");
        assert!(Manifest::parse(&bad)
            .unwrap_err()
            .to_string()
            .contains("duplicate section"));
    }

    #[test]
    fn sample_backend_rejects_strategy_selection() {
        let sample = "\
version 1
name s
[topology]
kind single
aps 2
clients 1
snr_db 25
[channel]
backend sample
[sync]
strategy airsync-pilot
[traffic]
arrival poisson 500
packet fixed 700
duration_s 0.1
";
        assert!(Manifest::parse(sample)
            .unwrap_err()
            .to_string()
            .contains("backend fast"));
    }
}
