//! The machine-readable run record (`result.json`).
//!
//! JSON is hand-rolled (the workspace is dependency-free) with a fixed
//! field order and shortest-roundtrip float formatting, so the same
//! manifest + seed produces byte-identical bytes across runs, machines,
//! and `--threads` settings — CI byte-compares these files.

use crate::assertion::AssertionOutcome;
use jmb_obs::StopCause;

/// The overall outcome of a scenario run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every assertion held (exit 0).
    Pass,
    /// The run completed but at least one assertion failed (exit 1).
    AssertionFailed,
    /// A resource limit stopped the run early (exit 3).
    LimitExceeded,
    /// The manifest was invalid or the run could not start (exit 2).
    Invalid,
}

impl Verdict {
    /// Stable kebab-case name used in `result.json`.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::AssertionFailed => "assertion-failed",
            Verdict::LimitExceeded => "limit-exceeded",
            Verdict::Invalid => "invalid",
        }
    }

    /// The standardized process exit code for this verdict.
    pub fn exit_code(self) -> i32 {
        match self {
            Verdict::Pass => crate::EXIT_PASS,
            Verdict::AssertionFailed => crate::EXIT_ASSERTION,
            Verdict::LimitExceeded => crate::EXIT_LIMIT,
            Verdict::Invalid => crate::EXIT_INVALID,
        }
    }
}

/// Everything a scenario run reports (serialized as `result.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name (from the manifest, or the file stem when the
    /// manifest itself failed to parse).
    pub name: String,
    /// The master seed the run used.
    pub seed: u64,
    /// Overall outcome.
    pub verdict: Verdict,
    /// Why the event loop stopped.
    pub stop_cause: StopCause,
    /// Simulation events processed.
    pub events: u64,
    /// Per-assertion outcomes, in manifest order.
    pub assertions: Vec<AssertionOutcome>,
    /// The metrics snapshot, in canonical order.
    pub metrics: Vec<(String, f64)>,
    /// Machine-readable error text when `verdict` is `invalid`.
    pub error: Option<String>,
}

impl ScenarioReport {
    /// A report for a manifest that never ran (parse/validation/build
    /// failure). Exit code 2, no metrics, no assertions.
    pub fn invalid(name: &str, error: &crate::ScenarioError) -> Self {
        ScenarioReport {
            name: name.to_string(),
            seed: 0,
            verdict: Verdict::Invalid,
            stop_cause: StopCause::Completed,
            events: 0,
            assertions: Vec::new(),
            metrics: Vec::new(),
            error: Some(error.to_string()),
        }
    }

    /// Serializes the report with a stable field order.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str("  \"schema_version\": 1,\n");
        s.push_str(&format!("  \"name\": {},\n", json_str(&self.name)));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"verdict\": \"{}\",\n", self.verdict.name()));
        s.push_str(&format!("  \"exit_code\": {},\n", self.verdict.exit_code()));
        s.push_str(&format!(
            "  \"stop_cause\": \"{}\",\n",
            self.stop_cause.name()
        ));
        s.push_str(&format!("  \"events\": {},\n", self.events));
        s.push_str("  \"assertions\": [");
        for (i, a) in self.assertions.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"index\": {}, \"text\": {}, \"passed\": {}, \"actual\": {}}}",
                a.index,
                json_str(&a.text),
                a.passed,
                json_f64(a.actual)
            ));
        }
        if self.assertions.is_empty() {
            s.push_str("],\n");
        } else {
            s.push_str("\n  ],\n");
        }
        s.push_str("  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    {}: {}", json_str(k), json_f64(*v)));
        }
        if self.metrics.is_empty() {
            s.push_str("},\n");
        } else {
            s.push_str("\n  },\n");
        }
        match &self.error {
            Some(e) => s.push_str(&format!("  \"error\": {}\n", json_str(e))),
            None => s.push_str("  \"error\": null\n"),
        }
        s.push_str("}\n");
        s
    }
}

/// JSON string escaping (quotes, backslashes, control chars).
fn json_str(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Floats in shortest-roundtrip form; non-finite values become `null`
/// (JSON has no NaN) — deterministically.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Integral values print as integers either way ("3"), which is
        // valid JSON and stable.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScenarioReport {
        ScenarioReport {
            name: "demo".into(),
            seed: 7,
            verdict: Verdict::AssertionFailed,
            stop_cause: StopCause::Completed,
            events: 123,
            assertions: vec![AssertionOutcome {
                index: 0,
                text: "metric jain >= 0.8".into(),
                passed: false,
                actual: 0.5,
            }],
            metrics: vec![("jain".into(), 0.5), ("weird".into(), f64::NAN)],
            error: None,
        }
    }

    #[test]
    fn verdict_contract() {
        assert_eq!(Verdict::Pass.exit_code(), 0);
        assert_eq!(Verdict::AssertionFailed.exit_code(), 1);
        assert_eq!(Verdict::Invalid.exit_code(), 2);
        assert_eq!(Verdict::LimitExceeded.exit_code(), 3);
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let r = sample();
        assert_eq!(r.to_json(), r.to_json());
        let j = r.to_json();
        assert!(j.contains("\"verdict\": \"assertion-failed\""));
        assert!(j.contains("\"exit_code\": 1"));
        assert!(j.contains("\"passed\": false"));
        assert!(j.contains("\"weird\": null"), "NaN must serialize as null");
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn invalid_report_shape() {
        let e = crate::ScenarioError::Parse {
            line: 3,
            message: "unknown key `x`".into(),
        };
        let r = ScenarioReport::invalid("broken", &e);
        assert_eq!(r.verdict, Verdict::Invalid);
        let j = r.to_json();
        assert!(j.contains("\"assertions\": [],"));
        assert!(j.contains("\"metrics\": {},"));
        assert!(j.contains("line 3"));
    }
}
