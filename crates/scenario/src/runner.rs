//! Executes a parsed manifest headless and produces the report + trace.
//!
//! The runner owns the bridge from manifest specs to simulator configs:
//! fault knobs compile to a `jmb_sim::FaultSchedule`, traffic specs to
//! `jmb_traffic::ClientLoad`s, limits to `jmb_traffic::RunLimits`, and
//! the finished run is folded through [`crate::assertion::evaluate_all`]
//! into a [`ScenarioReport`]. Nothing here panics: every failure is a
//! typed [`ScenarioError`] (exit 2) or a [`Verdict`] (exit 0/1/3).
//!
//! Determinism: the only wall-clock read is the optional `wall_clock_s`
//! budget, which can stop the run ([`jmb_obs::StopCause::Wallclock`]) but
//! never contributes a value to `result.json` or the trace.

use crate::assertion::{evaluate_all, AssertionOutcome};
use crate::error::ScenarioError;
use crate::manifest::{
    ArrivalSpec, Assertion, Backend, FaultKnobs, FaultSpec, Manifest, PacketSpec, Topology,
    TrafficSpec,
};
use crate::report::{ScenarioReport, Verdict};
use jmb_city::{City, CityConfig, Reuse};
use jmb_core::fastnet::FastConfig;
use jmb_core::net::NetConfig;
use jmb_obs::{EventKind, StopCause, Trace};
use jmb_sim::{FaultConfig, FaultSchedule};
use jmb_traffic::{
    ApOutage, ArrivalProcess, ClientLoad, FastBackend, PacketSizeDist, RunLimits, SampleBackend,
    TrafficConfig, TrafficMetrics, TrafficSim, TransmitBackend,
};

/// Knobs the CLI may override without editing the manifest.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Overrides the manifest's master seed.
    pub seed: Option<u64>,
    /// Worker threads for city runs (single-cell runs are inherently
    /// single-threaded; the value must not change any output byte).
    pub threads: Option<usize>,
}

/// What a run produces: the report (for `result.json`) and the full event
/// trace (for `trace.jsonl`).
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The run record.
    pub report: ScenarioReport,
    /// The trace, one JSON object per line.
    pub trace_jsonl: String,
}

/// Runs a validated manifest headless.
pub fn run_manifest(m: &Manifest, opts: &RunOptions) -> Result<RunOutput, ScenarioError> {
    let seed = opts.seed.unwrap_or(m.seed);
    match &m.topology {
        Topology::Single {
            aps,
            clients,
            snr_db,
        } => {
            let snr: Vec<f64> = if snr_db.len() == 1 {
                vec![snr_db[0]; *clients]
            } else {
                snr_db.clone()
            };
            match m.backend {
                Backend::Fast => {
                    let schedule = schedule_from(&m.faults)?;
                    run_single(m, seed, |clean| {
                        let mut cfg = FastConfig::default_with(*aps, *clients, snr.clone(), seed);
                        cfg.sync = m.sync;
                        let mut b =
                            FastBackend::new(cfg).map_err(|e| ScenarioError::Sim(e.to_string()))?;
                        if !clean {
                            b.net_mut().set_fault_schedule(schedule.clone());
                        }
                        Ok(b)
                    })
                }
                Backend::Sample => run_single(m, seed, |_clean| {
                    let cfg = NetConfig::default_with(*aps, *clients, snr[0], seed);
                    SampleBackend::new(cfg).map_err(|e| ScenarioError::Sim(e.to_string()))
                }),
            }
        }
        Topology::City { .. } => run_city(m, seed, opts),
    }
}

/// Compiles one knob set into a validated `FaultConfig`. Probabilities
/// were range-checked at parse time; the builder re-validates anyway so a
/// hand-built manifest cannot sneak a bad value through.
fn knobs_to_config(k: &FaultKnobs) -> Result<FaultConfig, ScenarioError> {
    let mut b = FaultConfig::builder()
        .drop_chance(k.drop)
        .corrupt_chance(k.corrupt)
        .sync_loss_chance(k.sync_loss)
        .meas_loss_chance(k.meas_loss);
    for &(ap, p) in &k.per_slave {
        b = b.per_slave_sync_loss(ap, p);
    }
    b.build().map_err(|e| ScenarioError::Invalid(e.to_string()))
}

/// Compiles the `[faults]` section into a schedule (base + windows).
fn schedule_from(spec: &FaultSpec) -> Result<FaultSchedule, ScenarioError> {
    let mut s = FaultSchedule::constant(knobs_to_config(&spec.base)?);
    for w in &spec.windows {
        s = s
            .with_window(w.from_s, w.until_s, knobs_to_config(&w.knobs)?)
            .map_err(|e| ScenarioError::Invalid(e.to_string()))?;
    }
    Ok(s)
}

/// Maps the manifest traffic spec onto one client's load.
fn load_from(t: &TrafficSpec) -> ClientLoad {
    let arrival = match t.arrival {
        ArrivalSpec::Poisson { rate_pps } => ArrivalProcess::Poisson { rate_pps },
        ArrivalSpec::OnOff {
            burst_pps,
            on_s,
            off_s,
        } => ArrivalProcess::OnOff {
            burst_rate_pps: burst_pps,
            mean_on_s: on_s,
            mean_off_s: off_s,
        },
    };
    let size = match t.packet {
        PacketSpec::Fixed(n) => PacketSizeDist::Fixed(n),
        PacketSpec::Uniform { min, max } => PacketSizeDist::Uniform { min, max },
        PacketSpec::Bimodal {
            small,
            large,
            p_small,
        } => PacketSizeDist::Bimodal {
            small,
            large,
            p_small,
        },
    };
    ClientLoad { arrival, size }
}

/// Builds the traffic config a single-cell scenario describes.
fn traffic_config(m: &Manifest, seed: u64, clients: usize, with_outages: bool) -> TrafficConfig {
    let mut cfg = TrafficConfig::default_with(vec![load_from(&m.traffic); clients], seed);
    cfg.duration_s = m.traffic.duration_s;
    cfg.drain_timeout_s = m.traffic.drain_s;
    cfg.sync_strategy = m.sync;
    if with_outages {
        cfg.outages = m
            .faults
            .outages
            .iter()
            .map(|o| ApOutage {
                ap: o.ap,
                down_at_s: o.from_s,
                up_at_s: o.until_s,
            })
            .collect();
    }
    cfg
}

/// Compiles the `[limits]` section into `RunLimits`. The wall-clock
/// budget is the one legitimate host-clock read in the scenario stack:
/// it stops the run gracefully and no wall-time value enters any
/// artifact.
fn run_limits(m: &Manifest) -> RunLimits {
    let mut rl = RunLimits {
        max_events: m.limits.max_events,
        max_sim_time_s: m.limits.max_sim_time_s,
        ..RunLimits::none()
    };
    if let Some(budget_s) = m.limits.wall_clock_s {
        // jmb-allow(no-wallclock-in-sim): the wall-clock limit is a harness budget — it stops the run early but never alters simulated behaviour, and no wall-time value reaches result.json or the trace
        let t0 = std::time::Instant::now();
        rl.stop = Some(Box::new(move |_events, _t| {
            t0.elapsed().as_secs_f64() > budget_s
        }));
    }
    rl
}

/// The canonical metrics table for a traffic run, in
/// [`crate::assertion::COMMON_METRICS`] order.
fn metrics_table(tm: &TrafficMetrics) -> Vec<(String, f64)> {
    vec![
        ("goodput_mbps".into(), tm.goodput_bps() / 1e6),
        ("offered_mbps".into(), tm.offered_bps / 1e6),
        ("generated".into(), tm.generated as f64),
        ("delivered".into(), tm.delivered as f64),
        ("dropped".into(), tm.dropped as f64),
        ("retries".into(), tm.retries as f64),
        ("queued_at_end".into(), tm.queued_at_end as f64),
        ("median_latency_ms".into(), tm.median_latency_s() * 1e3),
        ("p99_latency_ms".into(), tm.p99_latency_s() * 1e3),
        ("jain".into(), tm.jain_fairness()),
        ("delivery_ratio".into(), tm.delivery_ratio()),
        ("sync_misses".into(), tm.sync_misses as f64),
        ("remeasure_ok".into(), tm.remeasure_ok as f64),
        ("remeasure_failed".into(), tm.remeasure_failed as f64),
        ("aps_degraded".into(), tm.aps_degraded as f64),
        ("aps_restored".into(), tm.aps_restored as f64),
        ("csi_stale".into(), tm.csi_stale_events as f64),
    ]
}

/// Folds limit causes and assertion outcomes into the verdict. A limit
/// stop trumps assertion results: the data is partial, so pass/fail over
/// it would be misleading either way.
fn verdict_of(cause: StopCause, outcomes: &[AssertionOutcome]) -> Verdict {
    if cause != StopCause::Completed {
        Verdict::LimitExceeded
    } else if outcomes.iter().all(|o| o.passed) {
        Verdict::Pass
    } else {
        Verdict::AssertionFailed
    }
}

/// Runs a single-cell scenario over any backend. `mk(true)` must build a
/// fault-free twin of `mk(false)` (same topology, same seed) — used for
/// the `goodput_vs_clean` degrade-not-stall metric.
fn run_single<B, F>(m: &Manifest, seed: u64, mk: F) -> Result<RunOutput, ScenarioError>
where
    B: TransmitBackend,
    F: Fn(bool) -> Result<B, ScenarioError>,
{
    let clients = m.traffic_clients();
    let cfg = traffic_config(m, seed, clients, true);
    let mut sim =
        TrafficSim::new(cfg, mk(false)?).map_err(|e| ScenarioError::Sim(e.to_string()))?;
    sim.trace.enable();
    sim.trace.emit(
        0.0,
        EventKind::ScenarioStarted {
            assertions: m.assertions.len(),
        },
    );
    let bounded = sim.run_bounded(run_limits(m));

    let mut metrics = metrics_table(&bounded.metrics);
    if m.assertions
        .iter()
        .any(|a| matches!(a, Assertion::Metric { name, .. } if name == "goodput_vs_clean"))
    {
        // Reference run: same seed, same load, no faults, no outages.
        let clean_cfg = traffic_config(m, seed, clients, false);
        let mut clean_sim =
            TrafficSim::new(clean_cfg, mk(true)?).map_err(|e| ScenarioError::Sim(e.to_string()))?;
        let clean = clean_sim.run();
        let ratio = if clean.goodput_bps() > 0.0 {
            bounded.metrics.goodput_bps() / clean.goodput_bps()
        } else {
            1.0
        };
        metrics.push(("goodput_vs_clean".into(), ratio));
    }

    let horizon = bounded.metrics.elapsed_s;
    let outcomes = evaluate_all(&m.assertions, &metrics, sim.trace.events(), horizon);
    for o in &outcomes {
        sim.trace.emit(
            horizon,
            EventKind::ScenarioAssertion {
                index: o.index,
                passed: o.passed,
            },
        );
    }
    sim.trace.emit(
        horizon,
        EventKind::ScenarioStopped {
            cause: bounded.cause,
            events: bounded.events,
        },
    );
    let verdict = verdict_of(bounded.cause, &outcomes);
    Ok(RunOutput {
        report: ScenarioReport {
            name: m.name.clone(),
            seed,
            verdict,
            stop_cause: bounded.cause,
            events: bounded.events,
            assertions: outcomes,
            metrics,
            error: None,
        },
        trace_jsonl: sim.trace.to_jsonl(),
    })
}

/// Runs a city-grid scenario. Cells execute as whole epochs, so the only
/// honourable limit is `max_sim_time_s`, enforced as a precheck: a grid
/// whose epoch span exceeds the budget reports `limit-exceeded` without
/// running at all.
fn run_city(m: &Manifest, seed: u64, opts: &RunOptions) -> Result<RunOutput, ScenarioError> {
    let Topology::City {
        cols,
        rows,
        reuse,
        aps_per_cell,
        clients_per_cell,
        spacing_m,
        snr_db,
    } = &m.topology
    else {
        return Err(ScenarioError::Invalid(
            "run_city needs a city topology".into(),
        ));
    };
    let reuse = match reuse {
        1 => Reuse::One,
        3 => Reuse::Three,
        _ => Reuse::Seven,
    };
    let (rate_pps, packet_bytes) = match (m.traffic.arrival, m.traffic.packet) {
        (ArrivalSpec::Poisson { rate_pps }, PacketSpec::Fixed(b)) => (rate_pps, b),
        // validate() pins city traffic to poisson + fixed.
        _ => {
            return Err(ScenarioError::Invalid(
                "city traffic must be poisson + fixed".into(),
            ))
        }
    };
    let mut cfg = CityConfig::default_with(*cols, *rows, reuse, seed);
    cfg.aps_per_cell = *aps_per_cell;
    cfg.clients_per_cell = *clients_per_cell;
    cfg.spacing_m = *spacing_m;
    cfg.client_snr_db = *snr_db;
    cfg.rate_pps = rate_pps;
    cfg.packet_bytes = packet_bytes;
    cfg.duration_s = m.traffic.duration_s;
    cfg.epochs = 1;
    cfg.threads = opts.threads.unwrap_or(1).max(1);

    let span_s = cfg.epochs as f64 * cfg.epoch_span_s();
    if let Some(budget) = m.limits.max_sim_time_s {
        if span_s > budget {
            // The grid cannot be stopped mid-epoch; refuse up front.
            let mut trace = Trace::new();
            trace.enable();
            trace.emit(
                0.0,
                EventKind::ScenarioStarted {
                    assertions: m.assertions.len(),
                },
            );
            trace.emit(
                0.0,
                EventKind::ScenarioStopped {
                    cause: StopCause::MaxSimTime,
                    events: 0,
                },
            );
            return Ok(RunOutput {
                report: ScenarioReport {
                    name: m.name.clone(),
                    seed,
                    verdict: Verdict::LimitExceeded,
                    stop_cause: StopCause::MaxSimTime,
                    events: 0,
                    assertions: Vec::new(),
                    metrics: Vec::new(),
                    error: None,
                },
                trace_jsonl: trace.to_jsonl(),
            });
        }
    }

    let mut city = City::new(cfg).map_err(|e| ScenarioError::Sim(e.to_string()))?;
    city.trace.enable();
    city.trace.emit(
        0.0,
        EventKind::ScenarioStarted {
            assertions: m.assertions.len(),
        },
    );
    let report = city.run().map_err(|e| ScenarioError::Sim(e.to_string()))?;

    let mut metrics = metrics_table(&report.pooled);
    metrics.push((
        "area_capacity_mbps_km2".into(),
        report.area_capacity_bps_per_km2() / 1e6,
    ));
    metrics.push(("mean_inr_db".into(), report.mean_inr_db()));

    let events = city.trace.events().len() as u64;
    let outcomes = evaluate_all(&m.assertions, &metrics, city.trace.events(), span_s);
    for o in &outcomes {
        city.trace.emit(
            span_s,
            EventKind::ScenarioAssertion {
                index: o.index,
                passed: o.passed,
            },
        );
    }
    city.trace.emit(
        span_s,
        EventKind::ScenarioStopped {
            cause: StopCause::Completed,
            events,
        },
    );
    let verdict = verdict_of(StopCause::Completed, &outcomes);
    Ok(RunOutput {
        report: ScenarioReport {
            name: m.name.clone(),
            seed,
            verdict,
            stop_cause: StopCause::Completed,
            events,
            assertions: outcomes,
            metrics,
            error: None,
        },
        trace_jsonl: city.trace.to_jsonl(),
    })
}

impl Manifest {
    /// Number of traffic clients a single-cell manifest drives.
    fn traffic_clients(&self) -> usize {
        match &self.topology {
            Topology::Single { clients, .. } => *clients,
            Topology::City {
                clients_per_cell, ..
            } => *clients_per_cell,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifest;

    fn tiny(faults: &str, assertions: &str) -> Manifest {
        let text = format!(
            "version 1\nname tiny\nseed 1\n\n[topology]\nkind single\naps 3\nclients 3\n\
             snr_db 26\n\n[channel]\nbackend fast\n\n[traffic]\narrival poisson 800\n\
             packet fixed 700\nduration_s 0.1\ndrain_s 0.05\n{faults}{assertions}"
        );
        Manifest::parse(&text).expect("tiny manifest parses")
    }

    #[test]
    fn clean_run_passes_basic_assertions() {
        let m = tiny(
            "",
            "[assertions]\nmetric delivery_ratio >= 0.9\nmetric jain >= 0.5\n\
             count Enqueued > 10\ncount ApDown == 0\n",
        );
        let out = run_manifest(&m, &RunOptions::default()).expect("runs");
        assert_eq!(
            out.report.verdict,
            Verdict::Pass,
            "{}",
            out.report.to_json()
        );
        assert_eq!(out.report.stop_cause, StopCause::Completed);
        assert!(out.report.events > 0);
        assert!(out.trace_jsonl.contains("ScenarioStarted"));
        assert!(out.trace_jsonl.contains("ScenarioStopped"));
        assert!(out.trace_jsonl.contains("ScenarioAssertion"));
    }

    #[test]
    fn failed_assertion_is_exit_one() {
        let m = tiny("", "[assertions]\nmetric dropped >= 1000000\n");
        let out = run_manifest(&m, &RunOptions::default()).expect("runs");
        assert_eq!(out.report.verdict, Verdict::AssertionFailed);
        assert_eq!(out.report.verdict.exit_code(), 1);
        assert!(!out.report.assertions[0].passed);
    }

    #[test]
    fn event_budget_is_exit_three() {
        let m = tiny("[limits]\nmax_events 10\n", "");
        let out = run_manifest(&m, &RunOptions::default()).expect("runs");
        assert_eq!(out.report.verdict, Verdict::LimitExceeded);
        assert_eq!(out.report.verdict.exit_code(), 3);
        assert_eq!(out.report.stop_cause, StopCause::MaxEvents);
        assert_eq!(out.report.events, 10);
    }

    #[test]
    fn goodput_vs_clean_reference_run() {
        let m = tiny(
            "[faults]\nsync_loss 0.1\n",
            "[assertions]\nmetric goodput_vs_clean >= 0.1\n",
        );
        let out = run_manifest(&m, &RunOptions::default()).expect("runs");
        let ratio = out
            .report
            .metrics
            .iter()
            .find(|(k, _)| k == "goodput_vs_clean")
            .map(|&(_, v)| v)
            .expect("ratio in table");
        assert!(ratio > 0.0 && ratio <= 1.5, "ratio {ratio}");
    }

    #[test]
    fn seed_override_changes_the_run_deterministically() {
        let m = tiny("", "");
        let a1 = run_manifest(
            &m,
            &RunOptions {
                seed: Some(5),
                threads: None,
            },
        )
        .expect("runs");
        let a2 = run_manifest(
            &m,
            &RunOptions {
                seed: Some(5),
                threads: None,
            },
        )
        .expect("runs");
        assert_eq!(a1.report.to_json(), a2.report.to_json());
        assert_eq!(a1.trace_jsonl, a2.trace_jsonl);
        assert_eq!(a1.report.seed, 5);
    }
}
