//! The checked-in scenario corpus stays healthy: every manifest under
//! `scenarios/` parses and validates, the cheapest one runs end-to-end
//! with a passing verdict, reruns are byte-identical, and the three
//! non-pass exit codes are reachable from the library API.

use jmb_scenario::{run_manifest, Manifest, RunOptions, ScenarioError, Verdict};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn corpus() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(corpus_dir()).expect("scenarios/ exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "scn") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).expect("readable manifest");
            out.push((name, text));
        }
    }
    out.sort();
    out
}

#[test]
fn every_corpus_manifest_parses_and_validates() {
    let corpus = corpus();
    assert!(
        corpus.len() >= 6,
        "expected the six-scenario corpus, found {}",
        corpus.len()
    );
    for (name, text) in &corpus {
        let m = Manifest::parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!m.assertions.is_empty(), "{name} asserts nothing");
        // Each scenario is a degrade-not-stall check: the stem matches
        // the manifest's declared name so result dirs are predictable.
        assert_eq!(format!("{}.scn", m.name), *name);
    }
}

#[test]
fn cheapest_corpus_scenario_passes_end_to_end() {
    let text = std::fs::read_to_string(corpus_dir().join("rural_long_range.scn")).unwrap();
    let m = Manifest::parse(&text).unwrap();
    let out = run_manifest(&m, &RunOptions::default()).expect("runs");
    assert_eq!(
        out.report.verdict,
        Verdict::Pass,
        "report: {}",
        out.report.to_json()
    );
    assert!(out.report.to_json().contains("\"exit_code\": 0"));
    assert!(!out.trace_jsonl.is_empty());
}

#[test]
fn corpus_runs_are_deterministic() {
    let text = std::fs::read_to_string(corpus_dir().join("rural_long_range.scn")).unwrap();
    let m = Manifest::parse(&text).unwrap();
    let a = run_manifest(&m, &RunOptions::default()).expect("runs");
    let b = run_manifest(&m, &RunOptions::default()).expect("runs");
    assert_eq!(a.report.to_json(), b.report.to_json());
    assert_eq!(a.trace_jsonl, b.trace_jsonl);
}

#[test]
fn broken_manifests_map_to_the_exit_code_contract() {
    let text = std::fs::read_to_string(corpus_dir().join("rural_long_range.scn")).unwrap();

    // Unknown key -> Parse error -> exit 2, with the line number.
    let bad = text.replace("kind single", "kind single\nmodulation qam");
    match Manifest::parse(&bad) {
        Err(ScenarioError::Parse { line, .. }) => assert!(line > 0),
        other => panic!("expected Parse error, got {other:?}"),
    }
    assert_eq!(Verdict::Invalid.exit_code(), 2);

    // Tiny event budget -> limit exceeded -> exit 3.
    let mut m = Manifest::parse(&text).unwrap();
    m.limits.max_events = Some(10);
    let out = run_manifest(&m, &RunOptions::default()).expect("runs");
    assert_eq!(out.report.verdict, Verdict::LimitExceeded);
    assert_eq!(out.report.verdict.exit_code(), 3);

    // Unsatisfiable assertion -> assertion failure -> exit 1.
    let mut m = Manifest::parse(&text).unwrap();
    m.limits.max_events = None;
    m.assertions = vec![jmb_scenario::Assertion::Metric {
        name: "goodput_mbps".into(),
        op: jmb_scenario::Op::Gt,
        value: 1e9,
    }];
    let out = run_manifest(&m, &RunOptions::default()).expect("runs");
    assert_eq!(out.report.verdict, Verdict::AssertionFailed);
    assert_eq!(out.report.verdict.exit_code(), 1);
}

#[test]
fn corpus_manifests_roundtrip_through_the_canonical_form() {
    for (name, text) in corpus() {
        let m = Manifest::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let back = Manifest::parse(&m.to_text()).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(back, m, "{name} changed across the canonical roundtrip");
    }
}
