//! Property tests for the manifest grammar: `parse(to_text(m)) == m`
//! across randomly drawn (valid) manifests, and line-numbered
//! diagnostics for malformed input.

use jmb_scenario::{
    ArrivalSpec, Assertion, Backend, FaultKnobs, FaultSpec, Limits, Manifest, Op, OutageSpec,
    PacketSpec, ScenarioError, SyncStrategyId, Topology, TrafficSpec, WindowSpec,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The canonical serializer and the parser are exact inverses: any
    /// valid manifest survives a parse -> to_text -> parse roundtrip
    /// bit-for-bit (floats print in shortest-roundtrip form).
    #[test]
    fn single_cell_manifest_roundtrips(
        seed in 0u64..10_000,
        aps in 1usize..6,
        clients in 1usize..8,
        snr in 5.0..35.0f64,
        rate in 100.0..5000.0f64,
        pkt in 64usize..1500,
        duration in 0.05..0.5f64,
        drain in 0.0..0.2f64,
        p in 0.01..0.9f64,
        from in 0.01..0.2f64,
        len in 0.01..0.2f64,
        budget in 1000u64..100_000,
        threshold in 0.0..1.0f64,
        sync_i in 0usize..3,
    ) {
        let m = Manifest {
            version: 1,
            name: "prop-single".into(),
            seed,
            topology: Topology::Single { aps, clients, snr_db: vec![snr] },
            backend: Backend::Fast,
            sync: SyncStrategyId::ALL[sync_i],
            traffic: TrafficSpec {
                arrival: ArrivalSpec::OnOff { burst_pps: rate, on_s: from, off_s: len },
                packet: PacketSpec::Bimodal { small: 64, large: pkt, p_small: p },
                duration_s: duration,
                drain_s: drain,
            },
            faults: FaultSpec {
                base: FaultKnobs { drop: p, per_slave: vec![(0, p)], ..Default::default() },
                windows: vec![WindowSpec {
                    from_s: from,
                    until_s: from + len,
                    knobs: FaultKnobs { sync_loss: p, meas_loss: p, ..Default::default() },
                }],
                outages: vec![OutageSpec { ap: 0, from_s: from, until_s: from + len }],
            },
            limits: Limits { max_events: Some(budget), ..Default::default() },
            assertions: vec![
                Assertion::Metric { name: "delivery_ratio".into(), op: Op::Ge, value: threshold },
                Assertion::Count { kind: "ApDown".into(), op: Op::Eq, value: 1, window: Some((from, from + len)) },
                Assertion::Respond {
                    from: "RemeasureScheduled".into(),
                    to: vec!["RemeasureOk".into(), "RemeasureFailed".into()],
                    within_s: len,
                },
            ],
        };
        let text = m.to_text();
        let back = Manifest::parse(&text).expect("serialized manifest reparses");
        prop_assert_eq!(back, m);
    }

    #[test]
    fn city_manifest_roundtrips(
        seed in 0u64..10_000,
        cols in 1usize..5,
        rows in 1usize..5,
        reuse_i in 0usize..3,
        aps in 1usize..5,
        clients in 1usize..8,
        spacing in 20.0..500.0f64,
        snr in 5.0..35.0f64,
        rate in 100.0..2000.0f64,
        pkt in 64usize..1500,
        duration in 0.05..0.3f64,
        sim_cap in 0.5..10.0f64,
    ) {
        let reuse = [1u32, 3, 7][reuse_i];
        let m = Manifest {
            version: 1,
            name: "prop-city".into(),
            seed,
            topology: Topology::City {
                cols,
                rows,
                reuse,
                aps_per_cell: aps,
                clients_per_cell: clients,
                spacing_m: spacing,
                snr_db: snr,
            },
            backend: Backend::Fast,
            sync: SyncStrategyId::default(),
            traffic: TrafficSpec {
                arrival: ArrivalSpec::Poisson { rate_pps: rate },
                packet: PacketSpec::Fixed(pkt),
                duration_s: duration,
                drain_s: 0.0,
            },
            faults: FaultSpec::default(),
            limits: Limits { max_sim_time_s: Some(sim_cap), ..Default::default() },
            assertions: vec![
                Assertion::Metric { name: "area_capacity_mbps_km2".into(), op: Op::Gt, value: 0.0 },
            ],
        };
        let text = m.to_text();
        let back = Manifest::parse(&text).expect("serialized manifest reparses");
        prop_assert_eq!(back, m);
    }

    /// Serialization is a fixpoint: to_text(parse(to_text(m))) == to_text(m).
    #[test]
    fn serialization_is_a_fixpoint(
        seed in 0u64..10_000,
        snr in 5.0..35.0f64,
        rate in 100.0..5000.0f64,
        duration in 0.05..0.5f64,
        sync_i in 0usize..3,
    ) {
        let m = Manifest {
            version: 1,
            name: "prop-fix".into(),
            seed,
            topology: Topology::Single { aps: 2, clients: 2, snr_db: vec![snr, snr * 0.5] },
            backend: Backend::Fast,
            sync: SyncStrategyId::ALL[sync_i],
            traffic: TrafficSpec {
                arrival: ArrivalSpec::Poisson { rate_pps: rate },
                packet: PacketSpec::Uniform { min: 64, max: 1400 },
                duration_s: duration,
                drain_s: 0.0,
            },
            faults: FaultSpec::default(),
            limits: Limits::default(),
            assertions: Vec::new(),
        };
        let text = m.to_text();
        let again = Manifest::parse(&text).expect("reparses").to_text();
        prop_assert_eq!(again, text);
    }

    /// Any unknown key spliced into a known-good manifest is reported
    /// with the exact line it sits on.
    #[test]
    fn unknown_keys_report_their_line(noise_i in 0usize..4) {
        let noise_word = ["modulation", "txpower", "bandwidth", "antenna"][noise_i];
        let base = "\
version 1
name probe
[topology]
kind single
aps 2
clients 2
snr_db 20
[traffic]
arrival poisson 500
packet fixed 700
duration_s 0.1
";
        let mut lines: Vec<&str> = base.lines().collect();
        let noise = format!("{noise_word} 42");
        // Splice after `kind single` (line 4) so the section is known.
        lines.insert(4, &noise);
        let text = lines.join("\n");
        match Manifest::parse(&text) {
            Err(ScenarioError::Parse { line, .. }) => prop_assert_eq!(line, 5),
            other => prop_assert!(false, "expected a Parse error, got {:?}", other),
        }
    }
}
