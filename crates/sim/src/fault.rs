//! Fault injection.
//!
//! In the spirit of smoltcp's example fault options (`--drop-chance`,
//! `--corrupt-chance`), the medium can be configured to misbehave so that
//! protocol robustness (retransmissions, stale-channel handling, CRC
//! rejection) is actually exercised rather than assumed.

/// Fault-injection configuration for a [`crate::medium::Medium`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that a scheduled transmission is dropped entirely
    /// (deep fade / collision with an un-modelled interferer).
    pub drop_chance: f64,
    /// Probability that a scheduled transmission has its payload samples
    /// corrupted in flight. Corruption leaves the preamble and SIGNAL field
    /// intact so the receiver still synchronises and decodes — and then
    /// rejects the frame at the CRC, exercising the retransmission path.
    pub corrupt_chance: f64,
}

impl FaultConfig {
    /// No faults — the default.
    pub fn none() -> Self {
        FaultConfig {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
        }
    }

    /// Drops transmissions with the given probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_drop_chance(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop chance {p} outside [0,1]");
        FaultConfig {
            drop_chance: p,
            ..Self::none()
        }
    }

    /// Corrupts transmission payloads with the given probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_corrupt_chance(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "corrupt chance {p} outside [0,1]");
        FaultConfig {
            corrupt_chance: p,
            ..Self::none()
        }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_clean() {
        assert_eq!(FaultConfig::default(), FaultConfig::none());
        assert_eq!(FaultConfig::none().drop_chance, 0.0);
        assert_eq!(FaultConfig::none().corrupt_chance, 0.0);
    }

    #[test]
    fn construction() {
        let f = FaultConfig::with_drop_chance(0.25);
        assert_eq!(f.drop_chance, 0.25);
        assert_eq!(f.corrupt_chance, 0.0);
        let f = FaultConfig::with_corrupt_chance(0.5);
        assert_eq!(f.corrupt_chance, 0.5);
        assert_eq!(f.drop_chance, 0.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_bad_probability() {
        FaultConfig::with_drop_chance(1.5);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_bad_corrupt_probability() {
        FaultConfig::with_corrupt_chance(-0.1);
    }
}
