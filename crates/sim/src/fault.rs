//! Fault injection.
//!
//! In the spirit of smoltcp's example fault options (`--drop-chance`,
//! `--corrupt-chance`), the medium can be configured to misbehave so that
//! protocol robustness (retransmissions, stale-channel handling, CRC
//! rejection) is actually exercised rather than assumed.
//!
//! PR 3 extends the model from the *data* plane (payload drops/corruption)
//! to the *control* plane — the signalling JMB actually lives on:
//!
//! * [`ControlFaults`] — per-slave sync-header loss and measurement-frame
//!   loss probabilities;
//! * [`FaultConfigBuilder`] — the validated way to compose several fault
//!   kinds in one config (the `with_*` constructors are single-fault
//!   conveniences and cannot be combined);
//! * [`FaultSchedule`] — time-windowed fault configs, so loss "storms" can
//!   hit the middle of a run and clear again.

use std::fmt;

/// Error returned by [`FaultConfigBuilder::build`] and the schedule
/// constructors when a parameter is out of range.
///
/// This is a local error type (not `jmb_core::JmbError`) because `jmb-sim`
/// sits *below* `jmb-core` in the dependency graph.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// A probability was outside `[0, 1]` (field name, offending value).
    Probability(&'static str, f64),
    /// A fault window's end time was not after its start time.
    Window {
        /// Window start, seconds.
        from_s: f64,
        /// Window end, seconds.
        until_s: f64,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::Probability(name, v) => {
                write!(f, "fault probability `{name}` = {v} outside [0, 1]")
            }
            FaultError::Window { from_s, until_s } => {
                write!(f, "fault window [{from_s}, {until_s}) is empty or inverted")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// Control-plane fault probabilities: losses of the signalling frames that
/// keep a JMB network coherent, as opposed to data-payload faults.
///
/// Sync-header loss models a slave failing to receive (or decode) the lead
/// AP's sync header before a joint transmission; measurement-frame loss
/// models a lost channel-measurement exchange, which leaves the CSI stale
/// until a re-measurement succeeds.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ControlFaults {
    /// Probability that any given slave misses the lead's sync header
    /// (applies to every slave unless overridden per slave).
    pub sync_loss_chance: f64,
    /// Per-slave overrides: `(ap_index, probability)`. An entry here takes
    /// precedence over [`ControlFaults::sync_loss_chance`] for that AP.
    pub per_slave_sync_loss: Vec<(usize, f64)>,
    /// Probability that a channel-measurement exchange is lost.
    pub meas_loss_chance: f64,
}

impl ControlFaults {
    /// No control-plane faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// The sync-header loss probability in effect for the given AP,
    /// honouring per-slave overrides.
    pub fn sync_loss_for(&self, ap: usize) -> f64 {
        self.per_slave_sync_loss
            .iter()
            .rev()
            .find(|(a, _)| *a == ap)
            .map(|(_, p)| *p)
            .unwrap_or(self.sync_loss_chance)
    }

    /// True when every probability is zero (the clean-path fast exit: no
    /// RNG draws happen, so clean runs stay byte-identical).
    pub fn is_clean(&self) -> bool {
        self.sync_loss_chance == 0.0
            && self.meas_loss_chance == 0.0
            && self.per_slave_sync_loss.iter().all(|(_, p)| *p == 0.0)
    }
}

/// Fault-injection configuration for a [`crate::medium::Medium`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultConfig {
    /// Probability that a scheduled transmission is dropped entirely
    /// (deep fade / collision with an un-modelled interferer).
    pub drop_chance: f64,
    /// Probability that a scheduled transmission has its payload samples
    /// corrupted in flight. Corruption leaves the preamble and SIGNAL field
    /// intact so the receiver still synchronises and decodes — and then
    /// rejects the frame at the CRC, exercising the retransmission path.
    pub corrupt_chance: f64,
    /// Control-plane (sync header / measurement frame) fault probabilities.
    pub control: ControlFaults,
}

impl FaultConfig {
    /// No faults — the default.
    pub fn none() -> Self {
        Self::default()
    }

    /// Starts a validated builder. Unlike the `with_*` single-fault
    /// constructors, the builder composes any combination of faults and
    /// checks all probabilities jointly at [`FaultConfigBuilder::build`].
    pub fn builder() -> FaultConfigBuilder {
        FaultConfigBuilder::default()
    }

    /// Drops transmissions with the given probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`. Prefer [`FaultConfig::builder`]
    /// to combine faults and get a `Result` instead of a panic.
    pub fn with_drop_chance(p: f64) -> Self {
        // jmb-allow(no-panic-hot-path): documented precondition (# Panics) — the fallible path is FaultConfig::builder, which returns FaultError
        assert!((0.0..=1.0).contains(&p), "drop chance {p} outside [0,1]");
        FaultConfig {
            drop_chance: p,
            ..Self::none()
        }
    }

    /// Corrupts transmission payloads with the given probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`. Prefer [`FaultConfig::builder`]
    /// to combine faults and get a `Result` instead of a panic.
    pub fn with_corrupt_chance(p: f64) -> Self {
        // jmb-allow(no-panic-hot-path): documented precondition (# Panics) — the fallible path is FaultConfig::builder, which returns FaultError
        assert!((0.0..=1.0).contains(&p), "corrupt chance {p} outside [0,1]");
        FaultConfig {
            corrupt_chance: p,
            ..Self::none()
        }
    }

    /// True when every probability (data and control plane) is zero.
    pub fn is_clean(&self) -> bool {
        self.drop_chance == 0.0 && self.corrupt_chance == 0.0 && self.control.is_clean()
    }
}

/// Validated builder for [`FaultConfig`]: accepts any combination of data-
/// and control-plane faults and rejects out-of-range probabilities jointly
/// at [`FaultConfigBuilder::build`] (every bad field is checked, the first
/// offender is reported).
#[derive(Debug, Clone, Default)]
pub struct FaultConfigBuilder {
    drop_chance: f64,
    corrupt_chance: f64,
    control: ControlFaults,
}

impl FaultConfigBuilder {
    /// Sets the transmission drop probability.
    pub fn drop_chance(mut self, p: f64) -> Self {
        self.drop_chance = p;
        self
    }

    /// Sets the payload corruption probability.
    pub fn corrupt_chance(mut self, p: f64) -> Self {
        self.corrupt_chance = p;
        self
    }

    /// Sets the sync-header loss probability applied to every slave.
    pub fn sync_loss_chance(mut self, p: f64) -> Self {
        self.control.sync_loss_chance = p;
        self
    }

    /// Overrides the sync-header loss probability for one slave AP.
    pub fn per_slave_sync_loss(mut self, ap: usize, p: f64) -> Self {
        self.control.per_slave_sync_loss.push((ap, p));
        self
    }

    /// Sets the measurement-frame loss probability.
    pub fn meas_loss_chance(mut self, p: f64) -> Self {
        self.control.meas_loss_chance = p;
        self
    }

    /// Validates every probability jointly and produces the config.
    pub fn build(self) -> Result<FaultConfig, FaultError> {
        let in_unit = |name: &'static str, p: f64| -> Result<(), FaultError> {
            if (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(FaultError::Probability(name, p))
            }
        };
        in_unit("drop_chance", self.drop_chance)?;
        in_unit("corrupt_chance", self.corrupt_chance)?;
        in_unit("sync_loss_chance", self.control.sync_loss_chance)?;
        in_unit("meas_loss_chance", self.control.meas_loss_chance)?;
        for &(_, p) in &self.control.per_slave_sync_loss {
            in_unit("per_slave_sync_loss", p)?;
        }
        Ok(FaultConfig {
            drop_chance: self.drop_chance,
            corrupt_chance: self.corrupt_chance,
            control: self.control,
        })
    }
}

/// A time window during which an alternate [`FaultConfig`] applies.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultWindow {
    /// Window start (inclusive), seconds.
    pub from_s: f64,
    /// Window end (exclusive), seconds.
    pub until_s: f64,
    /// The config in effect inside the window.
    pub config: FaultConfig,
}

/// A time-varying fault plan: a base config plus zero or more windows
/// (loss "storms") that replace it for a stretch of simulated time.
///
/// # Boundary semantics (pinned)
///
/// Scenario manifests compile straight into schedules, so the edge cases
/// are contractual, not incidental:
///
/// * windows are **half-open** `[from_s, until_s)`: a query at exactly
///   `from_s` is inside the window, a query at exactly `until_s` is
///   outside it — two windows that share a boundary time hand over
///   exactly once, with no overlap instant and no gap;
/// * when windows overlap — including at exact boundary times — the
///   **last added** matching window wins, so later
///   [`FaultSchedule::with_window`] calls layer over earlier ones;
/// * zero-length and inverted windows are rejected at construction
///   ([`FaultError::Window`]), as are NaN endpoints — a window either
///   covers real time or is a config bug.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSchedule {
    base: FaultConfig,
    windows: Vec<FaultWindow>,
}

impl FaultSchedule {
    /// A schedule that applies one config at all times.
    pub fn constant(config: FaultConfig) -> Self {
        FaultSchedule {
            base: config,
            windows: Vec::new(),
        }
    }

    /// No faults, ever.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a storm window `[from_s, until_s)` with its own config.
    pub fn with_window(
        mut self,
        from_s: f64,
        until_s: f64,
        config: FaultConfig,
    ) -> Result<Self, FaultError> {
        // `partial_cmp` (not `>`): NaN endpoints must be rejected too.
        if until_s.partial_cmp(&from_s) != Some(std::cmp::Ordering::Greater) {
            return Err(FaultError::Window { from_s, until_s });
        }
        self.windows.push(FaultWindow {
            from_s,
            until_s,
            config,
        });
        Ok(self)
    }

    /// The config in effect at time `t` (last matching window wins, the
    /// base config outside every window). Windows are half-open: `t ==
    /// from_s` matches, `t == until_s` does not (see the type-level
    /// boundary-semantics contract).
    pub fn config_at(&self, t: f64) -> &FaultConfig {
        self.windows
            .iter()
            .rev()
            .find(|w| t >= w.from_s && t < w.until_s)
            .map(|w| &w.config)
            .unwrap_or(&self.base)
    }

    /// True when the base config and every window are fault-free.
    pub fn is_clean(&self) -> bool {
        self.base.is_clean() && self.windows.iter().all(|w| w.config.is_clean())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_clean() {
        assert_eq!(FaultConfig::default(), FaultConfig::none());
        assert_eq!(FaultConfig::none().drop_chance, 0.0);
        assert_eq!(FaultConfig::none().corrupt_chance, 0.0);
        assert!(FaultConfig::none().is_clean());
        assert!(FaultSchedule::none().is_clean());
    }

    #[test]
    fn construction() {
        let f = FaultConfig::with_drop_chance(0.25);
        assert_eq!(f.drop_chance, 0.25);
        assert_eq!(f.corrupt_chance, 0.0);
        let f = FaultConfig::with_corrupt_chance(0.5);
        assert_eq!(f.corrupt_chance, 0.5);
        assert_eq!(f.drop_chance, 0.0);
        assert!(!f.is_clean());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_bad_probability() {
        FaultConfig::with_drop_chance(1.5);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_bad_corrupt_probability() {
        FaultConfig::with_corrupt_chance(-0.1);
    }

    #[test]
    fn builder_composes_all_faults() {
        let f = FaultConfig::builder()
            .drop_chance(0.1)
            .corrupt_chance(0.2)
            .sync_loss_chance(0.3)
            .meas_loss_chance(0.4)
            .per_slave_sync_loss(2, 0.9)
            .build()
            .unwrap();
        assert_eq!(f.drop_chance, 0.1);
        assert_eq!(f.corrupt_chance, 0.2);
        assert_eq!(f.control.sync_loss_chance, 0.3);
        assert_eq!(f.control.meas_loss_chance, 0.4);
        assert_eq!(f.control.sync_loss_for(2), 0.9);
        assert_eq!(f.control.sync_loss_for(1), 0.3);
    }

    #[test]
    fn builder_rejects_each_bad_probability() {
        assert_eq!(
            FaultConfig::builder().drop_chance(1.5).build(),
            Err(FaultError::Probability("drop_chance", 1.5))
        );
        assert_eq!(
            FaultConfig::builder().corrupt_chance(-0.5).build(),
            Err(FaultError::Probability("corrupt_chance", -0.5))
        );
        assert_eq!(
            FaultConfig::builder().sync_loss_chance(2.0).build(),
            Err(FaultError::Probability("sync_loss_chance", 2.0))
        );
        // NaN is not in [0, 1] either (NaN != NaN, so match on the field).
        assert!(matches!(
            FaultConfig::builder().meas_loss_chance(f64::NAN).build(),
            Err(FaultError::Probability("meas_loss_chance", _))
        ));
        assert_eq!(
            FaultConfig::builder()
                .per_slave_sync_loss(0, 7.0)
                .build()
                .unwrap_err(),
            FaultError::Probability("per_slave_sync_loss", 7.0)
        );
    }

    #[test]
    fn builder_rejects_jointly_even_when_one_field_is_valid() {
        // The original `with_*` constructors validated only their own field;
        // the builder must reject when *any* field is out of range.
        let err = FaultConfig::builder()
            .drop_chance(0.5)
            .corrupt_chance(1.01)
            .build()
            .unwrap_err();
        assert_eq!(err, FaultError::Probability("corrupt_chance", 1.01));
    }

    #[test]
    fn per_slave_override_last_wins() {
        let f = FaultConfig::builder()
            .per_slave_sync_loss(1, 0.2)
            .per_slave_sync_loss(1, 0.8)
            .build()
            .unwrap();
        assert_eq!(f.control.sync_loss_for(1), 0.8);
    }

    #[test]
    fn schedule_windows_apply_and_clear() {
        let storm = FaultConfig::builder()
            .sync_loss_chance(1.0)
            .build()
            .unwrap();
        let s = FaultSchedule::none().with_window(1.0, 2.0, storm).unwrap();
        assert!(s.config_at(0.5).is_clean());
        assert_eq!(s.config_at(1.0).control.sync_loss_chance, 1.0);
        assert_eq!(s.config_at(1.999).control.sync_loss_chance, 1.0);
        assert!(s.config_at(2.0).is_clean());
        assert!(!s.is_clean());
    }

    #[test]
    fn schedule_last_window_wins() {
        let a = FaultConfig::builder()
            .sync_loss_chance(0.3)
            .build()
            .unwrap();
        let b = FaultConfig::builder()
            .sync_loss_chance(0.7)
            .build()
            .unwrap();
        let s = FaultSchedule::none()
            .with_window(0.0, 10.0, a)
            .unwrap()
            .with_window(5.0, 6.0, b)
            .unwrap();
        assert_eq!(s.config_at(4.0).control.sync_loss_chance, 0.3);
        assert_eq!(s.config_at(5.5).control.sync_loss_chance, 0.7);
        assert_eq!(s.config_at(7.0).control.sync_loss_chance, 0.3);
    }

    #[test]
    fn schedule_rejects_empty_window() {
        let err = FaultSchedule::none()
            .with_window(2.0, 2.0, FaultConfig::none())
            .unwrap_err();
        assert_eq!(
            err,
            FaultError::Window {
                from_s: 2.0,
                until_s: 2.0
            }
        );
        assert!(err.to_string().contains("empty or inverted"));
    }

    /// A config whose sync-loss probability doubles as a label.
    fn sync(p: f64) -> FaultConfig {
        FaultConfig::builder().sync_loss_chance(p).build().unwrap()
    }

    #[test]
    fn config_at_exact_window_edges_is_half_open() {
        // Pinned: [from_s, until_s) — inclusive start, exclusive end.
        let s = FaultSchedule::none()
            .with_window(1.0, 2.0, sync(0.5))
            .unwrap();
        assert_eq!(
            s.config_at(1.0).control.sync_loss_chance,
            0.5,
            "t == from_s is inside"
        );
        assert_eq!(
            s.config_at(2.0).control.sync_loss_chance,
            0.0,
            "t == until_s is outside"
        );
        assert_eq!(
            s.config_at(1.0 + f64::EPSILON).control.sync_loss_chance,
            0.5
        );
        assert_eq!(
            s.config_at(2.0 - f64::EPSILON).control.sync_loss_chance,
            0.5
        );
        // Adjacent windows sharing a boundary hand over exactly once.
        let s = FaultSchedule::none()
            .with_window(0.0, 1.0, sync(0.1))
            .unwrap()
            .with_window(1.0, 2.0, sync(0.9))
            .unwrap();
        assert_eq!(s.config_at(1.0).control.sync_loss_chance, 0.9);
        assert_eq!(
            s.config_at(1.0 - f64::EPSILON).control.sync_loss_chance,
            0.1
        );
    }

    #[test]
    fn overlapping_windows_last_added_wins_at_exact_boundaries() {
        // Two windows with IDENTICAL endpoints: the later with_window call
        // wins everywhere in the window, including at from_s itself.
        let s = FaultSchedule::none()
            .with_window(1.0, 2.0, sync(0.2))
            .unwrap()
            .with_window(1.0, 2.0, sync(0.8))
            .unwrap();
        assert_eq!(s.config_at(1.0).control.sync_loss_chance, 0.8);
        assert_eq!(s.config_at(1.5).control.sync_loss_chance, 0.8);
        assert_eq!(s.config_at(2.0).control.sync_loss_chance, 0.0);
        // Partial overlap where the later window *starts* at the earlier
        // one's exact end: no instant belongs to both, no instant to
        // neither.
        let s = FaultSchedule::none()
            .with_window(0.0, 5.0, sync(0.3))
            .unwrap()
            .with_window(2.0, 3.0, sync(0.7))
            .unwrap();
        assert_eq!(
            s.config_at(2.0).control.sync_loss_chance,
            0.7,
            "overlay start edge"
        );
        assert_eq!(
            s.config_at(3.0).control.sync_loss_chance,
            0.3,
            "overlay end edge"
        );
        // Reversed insertion order flips the winner — order is semantic.
        let s = FaultSchedule::none()
            .with_window(2.0, 3.0, sync(0.7))
            .unwrap()
            .with_window(0.0, 5.0, sync(0.3))
            .unwrap();
        assert_eq!(s.config_at(2.5).control.sync_loss_chance, 0.3);
    }

    #[test]
    fn zero_length_inverted_and_nan_windows_rejected() {
        // Zero-length: [t, t) covers no instant under half-open semantics,
        // so construction refuses it rather than silently never matching.
        for (from, until) in [(2.0, 2.0), (3.0, 2.0), (f64::NAN, 1.0), (1.0, f64::NAN)] {
            let err = FaultSchedule::none()
                .with_window(from, until, FaultConfig::none())
                .unwrap_err();
            assert!(matches!(err, FaultError::Window { .. }), "{from}..{until}");
        }
        // A valid schedule stays usable after a rejected extension attempt
        // (with_window consumes self; the Ok path re-binds).
        let s = FaultSchedule::none()
            .with_window(0.0, 1.0, sync(0.5))
            .unwrap();
        assert_eq!(s.config_at(0.5).control.sync_loss_chance, 0.5);
    }

    #[test]
    fn fault_error_display() {
        let e = FaultError::Probability("drop_chance", 1.5);
        assert!(e.to_string().contains("drop_chance"));
        assert!(e.to_string().contains("outside [0, 1]"));
    }
}
