//! The per-subcarrier (fast) radio medium.
//!
//! For the large throughput sweeps (Figs. 8–13 of the paper: hundreds of
//! topologies × up to 10 APs × 3 SNR bands) the sample-level medium is
//! needlessly expensive. This medium works directly on the paper's own
//! analytical decomposition (§4):
//!
//! ```text
//! H(t) = R(t) · H · T(t)
//! ```
//!
//! Per occupied subcarrier `k`, the channel from transmitter `i` to receiver
//! `j` at symbol time `t` is
//!
//! ```text
//! h_ji(k; t) = link_ji(k) · e^{j(φ_i(t) − φ_j(t))}
//! ```
//!
//! with `link_ji(k)` the static (within coherence time) frequency response
//! and `φ` the oscillators' accumulated phase errors. Sampling-frequency
//! offset appears as a per-subcarrier phase ramp that grows with time,
//! consistent with the sample-level medium.
//!
//! The medium transports whole 64-bin OFDM symbol vectors; noise is per-bin
//! AWGN. Cross-validated against [`crate::medium::Medium`] in the workspace
//! integration tests.

use jmb_channel::{Link, PhaseTrajectory};
use jmb_dsp::rng::{complex_gaussian, JmbRng};
use jmb_dsp::{CMat, Complex64};
use jmb_phy::params::OfdmParams;

pub use crate::medium::NodeId;

struct Node {
    traj: PhaseTrajectory,
    /// Complex AWGN variance per frequency bin.
    noise_var: f64,
}

/// Time-invariant channel snapshot from [`SubcarrierMedium::snapshot_static`]:
/// the static frequency responses of a fixed tx/rx node set on a subcarrier
/// list. Combine with [`InstantPhasors`] via [`Self::matrix_at`].
pub struct StaticChannel {
    txs: Vec<NodeId>,
    rxs: Vec<NodeId>,
    ks: Vec<i32>,
    spacing: f64,
    /// `resp[k_idx][(j, i)]` = static response of `rx_j ← tx_i`.
    resp: Vec<CMat>,
}

/// Per-instant oscillator state for a [`StaticChannel`]'s node sets, filled
/// by [`SubcarrierMedium::instant_phasors`]. Reusable scratch: both vectors
/// are cleared and refilled on each call.
#[derive(Default)]
pub struct InstantPhasors {
    /// `e^{j(φ_tx−φ_rx)}` per (rx, tx) pair, rx-major.
    pair_phasor: Vec<Complex64>,
    /// Sample-clock slip `(ratio_tx − ratio_rx)·t` per (rx, tx) pair.
    slip_s: Vec<f64>,
}

impl StaticChannel {
    /// The instantaneous channel matrix on subcarrier index `k_idx` at the
    /// instant captured by `inst`, into a reused matrix. Produces exactly
    /// `static_resp × e^{j(φ_tx−φ_rx)} × e^{j2πf_k·slip}` per entry — the
    /// same product, in the same order, as [`SubcarrierMedium::channel_at`].
    pub fn matrix_at(&self, inst: &InstantPhasors, k_idx: usize, out: &mut CMat) {
        let n_tx = self.txs.len();
        let n_rx = self.rxs.len();
        let f_k = self.ks[k_idx] as f64 * self.spacing;
        let resp = &self.resp[k_idx];
        out.reset(n_rx, n_tx);
        for j in 0..n_rx {
            for i in 0..n_tx {
                let p = j * n_tx + i;
                let sfo_rot = Complex64::cis(2.0 * std::f64::consts::PI * f_k * inst.slip_s[p]);
                out[(j, i)] = resp[(j, i)] * inst.pair_phasor[p] * sfo_rot;
            }
        }
    }

    /// One (tx, rx) pair's channel on every snapshotted subcarrier at the
    /// instant captured by `inst`, into a reused buffer — the row-shaped
    /// sibling of [`Self::matrix_at`], same per-entry arithmetic as
    /// [`SubcarrierMedium::channel_row_into`].
    pub fn row_at(
        &self,
        inst: &InstantPhasors,
        tx_idx: usize,
        rx_idx: usize,
        out: &mut Vec<Complex64>,
    ) {
        let p = rx_idx * self.txs.len() + tx_idx;
        let pair = inst.pair_phasor[p];
        let slip_s = inst.slip_s[p];
        out.clear();
        for (k_idx, &k) in self.ks.iter().enumerate() {
            let f_k = k as f64 * self.spacing;
            let sfo_rot = Complex64::cis(2.0 * std::f64::consts::PI * f_k * slip_s);
            out.push(self.resp[k_idx][(rx_idx, tx_idx)] * pair * sfo_rot);
        }
    }

    /// Number of subcarriers in the snapshot.
    pub fn n_subcarriers(&self) -> usize {
        self.ks.len()
    }
}

/// The fast, frequency-domain medium.
pub struct SubcarrierMedium {
    params: OfdmParams,
    nodes: Vec<Node>,
    /// `links[tx][rx]`.
    links: Vec<Vec<Option<Link>>>,
    rng: JmbRng,
}

impl SubcarrierMedium {
    /// Creates an empty medium.
    pub fn new(params: OfdmParams, seed: u64) -> Self {
        SubcarrierMedium {
            params,
            nodes: Vec::new(),
            links: Vec::new(),
            rng: jmb_dsp::rng::rng_from_seed(seed),
        }
    }

    /// The numerology in use.
    pub fn params(&self) -> &OfdmParams {
        &self.params
    }

    /// Registers a node (oscillator + per-bin noise variance).
    pub fn add_node(&mut self, traj: PhaseTrajectory, noise_var: f64) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { traj, noise_var });
        for row in self.links.iter_mut() {
            row.push(None);
        }
        self.links.push(vec![None; self.nodes.len()]);
        id
    }

    /// Installs the directional link `tx → rx`.
    pub fn set_link(&mut self, tx: NodeId, rx: NodeId, link: Link) {
        self.links[tx.0][rx.0] = Some(link);
    }

    /// Mutable link access (for fading evolution).
    pub fn link_mut(&mut self, tx: NodeId, rx: NodeId) -> Option<&mut Link> {
        self.links[tx.0][rx.0].as_mut()
    }

    /// Shared link access.
    pub fn link(&self, tx: NodeId, rx: NodeId) -> Option<&Link> {
        self.links[tx.0][rx.0].as_ref()
    }

    /// Mutable oscillator access.
    pub fn trajectory_mut(&mut self, node: NodeId) -> &mut PhaseTrajectory {
        &mut self.nodes[node.0].traj
    }

    /// Per-bin noise variance of a node.
    pub fn noise_var(&self, node: NodeId) -> f64 {
        self.nodes[node.0].noise_var
    }

    /// The *instantaneous physical* channel from `tx` to `rx` on one
    /// subcarrier at global time `t` — static link response times the
    /// oscillators' relative phasor. SFO contributes a time-growing
    /// per-subcarrier ramp.
    pub fn channel_at(&mut self, tx: NodeId, rx: NodeId, subcarrier: i32, t: f64) -> Complex64 {
        let Some(link) = self.links[tx.0][rx.0].as_ref() else {
            return Complex64::ZERO;
        };
        let f_k = subcarrier as f64 * self.params.subcarrier_spacing();
        let static_resp = link.freq_response_at(f_k);
        let tx_phase = self.nodes[tx.0].traj.phase_at(t);
        let rx_phase = self.nodes[rx.0].traj.phase_at(t);
        // Sampling-offset-induced timing drift: the two sample clocks slip
        // by (ratio_tx − ratio_rx)·t seconds over time, which appears as a
        // per-subcarrier phase ramp (exactly what the sample-level medium's
        // resampling produces).
        let slip_s =
            (self.nodes[tx.0].traj.sample_ratio() - self.nodes[rx.0].traj.sample_ratio()) * t;
        let sfo_rot = Complex64::cis(2.0 * std::f64::consts::PI * f_k * slip_s);
        static_resp * Complex64::cis(tx_phase - rx_phase) * sfo_rot
    }

    /// The full channel matrix on one subcarrier at time `t`:
    /// `H[(j, i)] = h(rx_j ← tx_i)` — rows are receivers, columns are
    /// transmitters, matching the paper's `H` (§4).
    pub fn channel_matrix(
        &mut self,
        txs: &[NodeId],
        rxs: &[NodeId],
        subcarrier: i32,
        t: f64,
    ) -> CMat {
        let mut h = CMat::zeros(rxs.len(), txs.len());
        self.channel_matrix_into(txs, rxs, subcarrier, t, &mut h);
        h
    }

    /// Allocation-free variant of [`Self::channel_matrix`]: fills `out`
    /// (reshaped to `rxs.len() × txs.len()`, reusing its storage) instead of
    /// returning a fresh matrix. This is the form the per-subcarrier hot
    /// loops use so no matrix is allocated per (subcarrier, probe) pair.
    pub fn channel_matrix_into(
        &mut self,
        txs: &[NodeId],
        rxs: &[NodeId],
        subcarrier: i32,
        t: f64,
        out: &mut CMat,
    ) {
        out.reset(rxs.len(), txs.len());
        for (j, &rx) in rxs.iter().enumerate() {
            for (i, &tx) in txs.iter().enumerate() {
                out[(j, i)] = self.channel_at(tx, rx, subcarrier, t);
            }
        }
    }

    /// One link's channel on every subcarrier of `ks` at a single instant,
    /// into a reused buffer. Identical arithmetic to [`Self::channel_at`]
    /// per entry, but the oscillator phases, the pair phasor, and the clock
    /// slip — which do not depend on the subcarrier — are computed once
    /// instead of `ks.len()` times.
    pub fn channel_row_into(
        &mut self,
        tx: NodeId,
        rx: NodeId,
        ks: &[i32],
        t: f64,
        out: &mut Vec<Complex64>,
    ) {
        out.clear();
        let Some(link) = self.links[tx.0][rx.0].as_ref() else {
            out.resize(ks.len(), Complex64::ZERO);
            return;
        };
        let tx_phase = self.nodes[tx.0].traj.phase_at(t);
        let rx_phase = self.nodes[rx.0].traj.phase_at(t);
        let pair = Complex64::cis(tx_phase - rx_phase);
        let slip_s =
            (self.nodes[tx.0].traj.sample_ratio() - self.nodes[rx.0].traj.sample_ratio()) * t;
        let spacing = self.params.subcarrier_spacing();
        for &k in ks {
            let f_k = k as f64 * spacing;
            let static_resp = link.freq_response_at(f_k);
            let sfo_rot = Complex64::cis(2.0 * std::f64::consts::PI * f_k * slip_s);
            out.push(static_resp * pair * sfo_rot);
        }
    }

    /// Snapshots the *static* part of the channels between a fixed
    /// transmitter and receiver set on a subcarrier list: link gain ×
    /// fading response × delay rotation, per (rx, tx, subcarrier). The
    /// multipath tap sum is the expensive term of [`Self::channel_at`] and
    /// is time-invariant between fading evolutions, so packet-length hot
    /// loops build this once and then pay only the oscillator phasors per
    /// probe instant (see [`InstantPhasors`] and [`StaticChannel::matrix_at`]).
    ///
    /// The snapshot is stale once any involved link evolves; rebuild it.
    pub fn snapshot_static(&self, txs: &[NodeId], rxs: &[NodeId], ks: &[i32]) -> StaticChannel {
        let spacing = self.params.subcarrier_spacing();
        let resp = ks
            .iter()
            .map(|&k| {
                let f_k = k as f64 * spacing;
                let mut m = CMat::zeros(rxs.len(), txs.len());
                for (j, &rx) in rxs.iter().enumerate() {
                    for (i, &tx) in txs.iter().enumerate() {
                        if let Some(link) = self.links[tx.0][rx.0].as_ref() {
                            m[(j, i)] = link.freq_response_at(f_k);
                        }
                    }
                }
                m
            })
            .collect();
        StaticChannel {
            txs: txs.to_vec(),
            rxs: rxs.to_vec(),
            ks: ks.to_vec(),
            spacing,
            resp,
        }
    }

    /// Evaluates the oscillator state of `snap`'s node sets at instant `t`:
    /// pair phasors `e^{j(φ_tx−φ_rx)}` and per-pair sample-clock slips,
    /// once per instant instead of once per (pair, subcarrier).
    pub fn instant_phasors(&mut self, snap: &StaticChannel, t: f64, out: &mut InstantPhasors) {
        let n_tx = snap.txs.len();
        let tx_state: Vec<(f64, f64)> = snap
            .txs
            .iter()
            .map(|&n| {
                let traj = &mut self.nodes[n.0].traj;
                (traj.phase_at(t), traj.sample_ratio())
            })
            .collect();
        let rx_state: Vec<(f64, f64)> = snap
            .rxs
            .iter()
            .map(|&n| {
                let traj = &mut self.nodes[n.0].traj;
                (traj.phase_at(t), traj.sample_ratio())
            })
            .collect();
        out.pair_phasor.clear();
        out.slip_s.clear();
        for &(rx_phase, rx_ratio) in &rx_state {
            for &(tx_phase, tx_ratio) in &tx_state {
                out.pair_phasor.push(Complex64::cis(tx_phase - rx_phase));
                out.slip_s.push((tx_ratio - rx_ratio) * t);
            }
        }
        debug_assert_eq!(out.pair_phasor.len(), n_tx * snap.rxs.len());
    }

    /// Transports one OFDM symbol: each transmitter radiates its 64-bin
    /// vector at global time `t`; each receiver gets the superposition
    /// through the instantaneous channels plus per-bin AWGN.
    ///
    /// Returns one 64-bin vector per entry of `rxs`.
    ///
    /// # Panics
    ///
    /// Panics if any transmit vector is not `fft_size` long.
    pub fn transmit_symbol(
        &mut self,
        txs: &[(NodeId, &[Complex64])],
        rxs: &[NodeId],
        t: f64,
    ) -> Vec<Vec<Complex64>> {
        let n = self.params.fft_size;
        for (_, bins) in txs {
            // jmb-allow(no-panic-hot-path): caller contract — every transmitter renders bins with the medium's own fft_size
            assert_eq!(bins.len(), n, "tx bins must be fft_size long");
        }
        let occupied = self.params.occupied_subcarriers();
        let mut out = Vec::with_capacity(rxs.len());
        for &rx in rxs {
            let noise_var = self.nodes[rx.0].noise_var;
            let mut bins = vec![Complex64::ZERO; n];
            // Noise on occupied bins (unoccupied bins are ignored downstream).
            for &k in &occupied {
                let b = self.params.bin(k);
                bins[b] = complex_gaussian(&mut self.rng, noise_var);
            }
            for &(tx, tx_bins) in txs {
                if tx == rx {
                    continue;
                }
                if self.links[tx.0][rx.0].is_none() {
                    continue;
                }
                for &k in &occupied {
                    let b = self.params.bin(k);
                    if tx_bins[b] == Complex64::ZERO {
                        continue;
                    }
                    let h = self.channel_at(tx, rx, k, t);
                    bins[b] = h.mul_add(tx_bins[b], bins[b]);
                }
            }
            out.push(bins);
        }
        out
    }

    /// Evolves every link's fading by `dt` seconds.
    pub fn evolve_fading(&mut self, dt: f64) {
        // Use a derived RNG stream so fading evolution does not perturb the
        // noise stream (keeps experiments comparable across configurations).
        let mut rng = jmb_dsp::rng::derive_rng(self.rng.gen_seed(), 0xFAD);
        for row in self.links.iter_mut() {
            for l in row.iter_mut().flatten() {
                l.evolve(dt, &mut rng);
            }
        }
    }
}

/// Small extension trait to pull a derivation seed out of an RNG without
/// consuming its main stream semantics.
trait GenSeed {
    fn gen_seed(&mut self) -> u64;
}

impl GenSeed for JmbRng {
    fn gen_seed(&mut self) -> u64 {
        use rand::Rng;
        self.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmb_dsp::complex::mean_power;
    use jmb_phy::params::ChannelProfile;

    const FC: f64 = 2.437e9;

    fn medium(seed: u64) -> SubcarrierMedium {
        SubcarrierMedium::new(OfdmParams::new(ChannelProfile::Usrp10MHz), seed)
    }

    fn clean_node(m: &mut SubcarrierMedium) -> NodeId {
        m.add_node(PhaseTrajectory::fixed(FC, 0.0), 0.0)
    }

    #[test]
    fn ideal_link_identity_channel() {
        let mut m = medium(1);
        let a = clean_node(&mut m);
        let b = clean_node(&mut m);
        m.set_link(a, b, Link::ideal());
        for k in [-26, -7, 1, 26] {
            let h = m.channel_at(a, b, k, 0.0);
            assert!((h - Complex64::ONE).abs() < 1e-12, "k={k}");
        }
        assert_eq!(
            m.channel_at(b, a, 1, 0.0),
            Complex64::ZERO,
            "no reverse link"
        );
    }

    #[test]
    fn cfo_rotates_channel_over_time() {
        let mut m = medium(2);
        let cfo = 1_000.0;
        let a = m.add_node(PhaseTrajectory::fixed(FC, cfo), 0.0);
        let b = clean_node(&mut m);
        m.set_link(a, b, Link::ideal());
        let h0 = m.channel_at(a, b, 1, 0.0);
        let t = 1e-3;
        let h1 = m.channel_at(a, b, 1, t);
        let expected_rot = 2.0 * std::f64::consts::PI * cfo * t;
        let got = (h1 * h0.conj()).arg();
        // Tolerance admits the (physically correct) SFO phase ramp the
        // shared crystal adds: ~4e-4 rad here.
        assert!(
            (jmb_dsp::complex::wrap_phase(got - expected_rot)).abs() < 1e-3,
            "rotation {got} vs {expected_rot}"
        );
    }

    #[test]
    fn channel_matrix_shape_and_content() {
        let mut m = medium(3);
        let t1 = clean_node(&mut m);
        let t2 = clean_node(&mut m);
        let r1 = clean_node(&mut m);
        let r2 = clean_node(&mut m);
        let mut link = Link::ideal();
        link.gain = Complex64::new(0.5, 0.0);
        m.set_link(t1, r1, Link::ideal());
        m.set_link(t2, r2, link);
        let h = m.channel_matrix(&[t1, t2], &[r1, r2], 1, 0.0);
        assert_eq!(h.rows(), 2);
        assert_eq!(h.cols(), 2);
        assert!((h[(0, 0)] - Complex64::ONE).abs() < 1e-12);
        assert!((h[(1, 1)] - Complex64::new(0.5, 0.0)).abs() < 1e-12);
        assert_eq!(h[(0, 1)], Complex64::ZERO);
        assert_eq!(h[(1, 0)], Complex64::ZERO);
    }

    #[test]
    fn transmit_symbol_superposes() {
        let mut m = medium(4);
        let t1 = clean_node(&mut m);
        let t2 = clean_node(&mut m);
        let rx = clean_node(&mut m);
        m.set_link(t1, rx, Link::ideal());
        m.set_link(t2, rx, Link::ideal());
        let p = m.params().clone();
        let mut bins = vec![Complex64::ZERO; p.fft_size];
        bins[p.bin(5)] = Complex64::ONE;
        let neg: Vec<Complex64> = bins.iter().map(|&x| -x).collect();
        let out = m.transmit_symbol(&[(t1, &bins), (t2, &neg)], &[rx], 0.0);
        assert_eq!(out.len(), 1);
        assert!(out[0][p.bin(5)].abs() < 1e-12, "perfect null");
        let out2 = m.transmit_symbol(&[(t1, &bins), (t2, &bins)], &[rx], 0.0);
        assert!((out2[0][p.bin(5)] - Complex64::real(2.0)).abs() < 1e-12);
    }

    #[test]
    fn noise_power_per_bin() {
        let mut m = medium(5);
        let rx = m.add_node(PhaseTrajectory::fixed(FC, 0.0), 0.02);
        let p = m.params().clone();
        let mut acc = Vec::new();
        for i in 0..200 {
            let out = m.transmit_symbol(&[], &[rx], i as f64 * 8e-6);
            for &k in &p.occupied_subcarriers() {
                acc.push(out[0][p.bin(k)]);
            }
        }
        let pw = mean_power(&acc);
        assert!((pw - 0.02).abs() < 0.002, "noise power {pw}");
    }

    #[test]
    fn sfo_creates_subcarrier_ramp() {
        let mut m = medium(6);
        // +10 ppm transmitter.
        let offset = 10e-6 * FC;
        let a = m.add_node(PhaseTrajectory::fixed(FC, offset), 0.0);
        let b = clean_node(&mut m);
        m.set_link(a, b, Link::ideal());
        let t = 2e-3; // 2 ms of clock slip
        let h_low = m.channel_at(a, b, -20, t);
        let h_high = m.channel_at(a, b, 20, t);
        // CFO rotation is common; the differential phase across subcarriers
        // comes from SFO slip: Δφ = 2π·(f_high − f_low)·(ppm·t).
        let p = m.params().clone();
        let slip = 10e-6 * t;
        let expected = 2.0 * std::f64::consts::PI * 40.0 * p.subcarrier_spacing() * slip;
        let got = (h_high * h_low.conj()).arg();
        assert!(
            (jmb_dsp::complex::wrap_phase(got - expected)).abs() < 1e-6,
            "ramp {got} vs {expected}"
        );
    }

    #[test]
    fn decompose_like_paper_r_h_t() {
        // The medium must satisfy H(t) = R(t)·H·T(t) with diagonal R, T —
        // verify by checking h_ji(t)/h_ji(0) = e^{j(ω_i−ω_j)t} independent
        // of the static channel.
        let mut m = medium(7);
        let tx1 = m.add_node(PhaseTrajectory::fixed(FC, 500.0), 0.0);
        let tx2 = m.add_node(PhaseTrajectory::fixed(FC, -300.0), 0.0);
        let rx = m.add_node(PhaseTrajectory::fixed(FC, 120.0), 0.0);
        let mut l1 = Link::ideal();
        l1.gain = Complex64::from_polar(0.7, 1.0);
        let mut l2 = Link::ideal();
        l2.gain = Complex64::from_polar(0.3, -2.0);
        m.set_link(tx1, rx, l1);
        m.set_link(tx2, rx, l2);
        let t = 0.5e-3;
        for (tx, f_tx) in [(tx1, 500.0), (tx2, -300.0)] {
            let h0 = m.channel_at(tx, rx, 3, 0.0);
            let ht = m.channel_at(tx, rx, 3, t);
            let ratio = ht / h0;
            let expected = Complex64::cis(2.0 * std::f64::consts::PI * (f_tx - 120.0) * t);
            // Tolerance admits the shared-crystal SFO ramp (~2e-4 rad).
            assert!((ratio - expected).abs() < 1e-3, "tx offset {f_tx}");
        }
    }

    #[test]
    fn snapshot_paths_match_channel_at_exactly() {
        // The hoisted fast paths (snapshot_static + instant_phasors →
        // matrix_at / row_at, and channel_row_into) must produce
        // bit-identical values to per-entry channel_at: same operands,
        // same multiplication order.
        let mut m = medium(21);
        let mut rng = jmb_dsp::rng::rng_from_seed(5);
        let txs: Vec<NodeId> = (0..3)
            .map(|i| m.add_node(PhaseTrajectory::fixed(FC, 300.0 * i as f64 - 200.0), 0.0))
            .collect();
        let rxs: Vec<NodeId> = (0..2)
            .map(|j| m.add_node(PhaseTrajectory::fixed(FC, -150.0 * j as f64 + 80.0), 0.0))
            .collect();
        for &tx in &txs {
            for &rx in &rxs {
                let link = Link::new(
                    Complex64::from_polar(0.8, 0.3),
                    25e-9,
                    jmb_channel::Multipath::new(
                        jmb_channel::MultipathSpec::indoor_nlos(),
                        &mut rng,
                    ),
                );
                m.set_link(tx, rx, link);
            }
        }
        let ks = [-26, -3, 1, 17, 26];
        let snap = m.snapshot_static(&txs, &rxs, &ks);
        let mut inst = InstantPhasors::default();
        let mut got = CMat::zeros(1, 1);
        let mut row = Vec::new();
        for t in [0.0, 1.3e-3, 7.7e-3] {
            m.instant_phasors(&snap, t, &mut inst);
            for (k_idx, &k) in ks.iter().enumerate() {
                snap.matrix_at(&inst, k_idx, &mut got);
                for (j, &rx) in rxs.iter().enumerate() {
                    for (i, &tx) in txs.iter().enumerate() {
                        let want = m.channel_at(tx, rx, k, t);
                        assert_eq!(got[(j, i)], want, "matrix_at k={k} t={t}");
                        snap.row_at(&inst, i, j, &mut row);
                        assert_eq!(row[k_idx], want, "row_at k={k} t={t}");
                    }
                }
            }
            for (j, &rx) in rxs.iter().enumerate() {
                for (i, &tx) in txs.iter().enumerate() {
                    m.channel_row_into(tx, rx, &ks, t, &mut row);
                    for (k_idx, &k) in ks.iter().enumerate() {
                        assert_eq!(
                            row[k_idx],
                            m.channel_at(tx, rx, k, t),
                            "channel_row_into tx={i} rx={j} k={k}"
                        );
                    }
                }
            }
        }
        // Missing links are zero in every path.
        let lonely = clean_node(&mut m);
        m.channel_row_into(lonely, rxs[0], &ks, 0.0, &mut row);
        assert!(row.iter().all(|&h| h == Complex64::ZERO));
    }

    #[test]
    fn fading_evolution_changes_links() {
        let mut m = medium(8);
        let a = clean_node(&mut m);
        let b = clean_node(&mut m);
        let mut rng = jmb_dsp::rng::rng_from_seed(77);
        let link = Link::new(
            Complex64::ONE,
            0.0,
            jmb_channel::Multipath::new(jmb_channel::MultipathSpec::indoor_nlos(), &mut rng),
        );
        m.set_link(a, b, link);
        let h0 = m.channel_at(a, b, 5, 0.0);
        m.evolve_fading(10.0); // many coherence times
        let h1 = m.channel_at(a, b, 5, 0.0);
        assert!((h0 - h1).abs() > 1e-6, "fading did not evolve");
    }
}
