//! The per-subcarrier (fast) radio medium.
//!
//! For the large throughput sweeps (Figs. 8–13 of the paper: hundreds of
//! topologies × up to 10 APs × 3 SNR bands) the sample-level medium is
//! needlessly expensive. This medium works directly on the paper's own
//! analytical decomposition (§4):
//!
//! ```text
//! H(t) = R(t) · H · T(t)
//! ```
//!
//! Per occupied subcarrier `k`, the channel from transmitter `i` to receiver
//! `j` at symbol time `t` is
//!
//! ```text
//! h_ji(k; t) = link_ji(k) · e^{j(φ_i(t) − φ_j(t))}
//! ```
//!
//! with `link_ji(k)` the static (within coherence time) frequency response
//! and `φ` the oscillators' accumulated phase errors. Sampling-frequency
//! offset appears as a per-subcarrier phase ramp that grows with time,
//! consistent with the sample-level medium.
//!
//! The medium transports whole 64-bin OFDM symbol vectors; noise is per-bin
//! AWGN. Cross-validated against [`crate::medium::Medium`] in the workspace
//! integration tests.

use jmb_channel::{Link, PhaseTrajectory};
use jmb_dsp::rng::{complex_gaussian, JmbRng};
use jmb_dsp::{CMat, Complex64};
use jmb_phy::params::OfdmParams;

pub use crate::medium::NodeId;

struct Node {
    traj: PhaseTrajectory,
    /// Complex AWGN variance per frequency bin.
    noise_var: f64,
}

/// The fast, frequency-domain medium.
pub struct SubcarrierMedium {
    params: OfdmParams,
    nodes: Vec<Node>,
    /// `links[tx][rx]`.
    links: Vec<Vec<Option<Link>>>,
    rng: JmbRng,
}

impl SubcarrierMedium {
    /// Creates an empty medium.
    pub fn new(params: OfdmParams, seed: u64) -> Self {
        SubcarrierMedium {
            params,
            nodes: Vec::new(),
            links: Vec::new(),
            rng: jmb_dsp::rng::rng_from_seed(seed),
        }
    }

    /// The numerology in use.
    pub fn params(&self) -> &OfdmParams {
        &self.params
    }

    /// Registers a node (oscillator + per-bin noise variance).
    pub fn add_node(&mut self, traj: PhaseTrajectory, noise_var: f64) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { traj, noise_var });
        for row in self.links.iter_mut() {
            row.push(None);
        }
        self.links.push(vec![None; self.nodes.len()]);
        id
    }

    /// Installs the directional link `tx → rx`.
    pub fn set_link(&mut self, tx: NodeId, rx: NodeId, link: Link) {
        self.links[tx.0][rx.0] = Some(link);
    }

    /// Mutable link access (for fading evolution).
    pub fn link_mut(&mut self, tx: NodeId, rx: NodeId) -> Option<&mut Link> {
        self.links[tx.0][rx.0].as_mut()
    }

    /// Shared link access.
    pub fn link(&self, tx: NodeId, rx: NodeId) -> Option<&Link> {
        self.links[tx.0][rx.0].as_ref()
    }

    /// Mutable oscillator access.
    pub fn trajectory_mut(&mut self, node: NodeId) -> &mut PhaseTrajectory {
        &mut self.nodes[node.0].traj
    }

    /// Per-bin noise variance of a node.
    pub fn noise_var(&self, node: NodeId) -> f64 {
        self.nodes[node.0].noise_var
    }

    /// The *instantaneous physical* channel from `tx` to `rx` on one
    /// subcarrier at global time `t` — static link response times the
    /// oscillators' relative phasor. SFO contributes a time-growing
    /// per-subcarrier ramp.
    pub fn channel_at(&mut self, tx: NodeId, rx: NodeId, subcarrier: i32, t: f64) -> Complex64 {
        let Some(link) = self.links[tx.0][rx.0].as_ref() else {
            return Complex64::ZERO;
        };
        let f_k = subcarrier as f64 * self.params.subcarrier_spacing();
        let static_resp = link.freq_response_at(f_k);
        let tx_phase = self.nodes[tx.0].traj.phase_at(t);
        let rx_phase = self.nodes[rx.0].traj.phase_at(t);
        // Sampling-offset-induced timing drift: the two sample clocks slip
        // by (ratio_tx − ratio_rx)·t seconds over time, which appears as a
        // per-subcarrier phase ramp (exactly what the sample-level medium's
        // resampling produces).
        let slip_s = (self.nodes[tx.0].traj.sample_ratio() - self.nodes[rx.0].traj.sample_ratio())
            * t;
        let sfo_rot = Complex64::cis(2.0 * std::f64::consts::PI * f_k * slip_s);
        static_resp * Complex64::cis(tx_phase - rx_phase) * sfo_rot
    }

    /// The full channel matrix on one subcarrier at time `t`:
    /// `H[(j, i)] = h(rx_j ← tx_i)` — rows are receivers, columns are
    /// transmitters, matching the paper's `H` (§4).
    pub fn channel_matrix(
        &mut self,
        txs: &[NodeId],
        rxs: &[NodeId],
        subcarrier: i32,
        t: f64,
    ) -> CMat {
        let mut h = CMat::zeros(rxs.len(), txs.len());
        for (j, &rx) in rxs.iter().enumerate() {
            for (i, &tx) in txs.iter().enumerate() {
                h[(j, i)] = self.channel_at(tx, rx, subcarrier, t);
            }
        }
        h
    }

    /// Transports one OFDM symbol: each transmitter radiates its 64-bin
    /// vector at global time `t`; each receiver gets the superposition
    /// through the instantaneous channels plus per-bin AWGN.
    ///
    /// Returns one 64-bin vector per entry of `rxs`.
    ///
    /// # Panics
    ///
    /// Panics if any transmit vector is not `fft_size` long.
    pub fn transmit_symbol(
        &mut self,
        txs: &[(NodeId, &[Complex64])],
        rxs: &[NodeId],
        t: f64,
    ) -> Vec<Vec<Complex64>> {
        let n = self.params.fft_size;
        for (_, bins) in txs {
            assert_eq!(bins.len(), n, "tx bins must be fft_size long");
        }
        let occupied = self.params.occupied_subcarriers();
        let mut out = Vec::with_capacity(rxs.len());
        for &rx in rxs {
            let noise_var = self.nodes[rx.0].noise_var;
            let mut bins = vec![Complex64::ZERO; n];
            // Noise on occupied bins (unoccupied bins are ignored downstream).
            for &k in &occupied {
                let b = self.params.bin(k);
                bins[b] = complex_gaussian(&mut self.rng, noise_var);
            }
            for &(tx, tx_bins) in txs {
                if tx == rx {
                    continue;
                }
                if self.links[tx.0][rx.0].is_none() {
                    continue;
                }
                for &k in &occupied {
                    let b = self.params.bin(k);
                    if tx_bins[b] == Complex64::ZERO {
                        continue;
                    }
                    let h = self.channel_at(tx, rx, k, t);
                    bins[b] = h.mul_add(tx_bins[b], bins[b]);
                }
            }
            out.push(bins);
        }
        out
    }

    /// Evolves every link's fading by `dt` seconds.
    pub fn evolve_fading(&mut self, dt: f64) {
        // Use a derived RNG stream so fading evolution does not perturb the
        // noise stream (keeps experiments comparable across configurations).
        let mut rng = jmb_dsp::rng::derive_rng(self.rng.gen_seed(), 0xFAD);
        for row in self.links.iter_mut() {
            for l in row.iter_mut().flatten() {
                l.evolve(dt, &mut rng);
            }
        }
    }
}

/// Small extension trait to pull a derivation seed out of an RNG without
/// consuming its main stream semantics.
trait GenSeed {
    fn gen_seed(&mut self) -> u64;
}

impl GenSeed for JmbRng {
    fn gen_seed(&mut self) -> u64 {
        use rand::Rng;
        self.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmb_dsp::complex::mean_power;
    use jmb_phy::params::ChannelProfile;

    const FC: f64 = 2.437e9;

    fn medium(seed: u64) -> SubcarrierMedium {
        SubcarrierMedium::new(OfdmParams::new(ChannelProfile::Usrp10MHz), seed)
    }

    fn clean_node(m: &mut SubcarrierMedium) -> NodeId {
        m.add_node(PhaseTrajectory::fixed(FC, 0.0), 0.0)
    }

    #[test]
    fn ideal_link_identity_channel() {
        let mut m = medium(1);
        let a = clean_node(&mut m);
        let b = clean_node(&mut m);
        m.set_link(a, b, Link::ideal());
        for k in [-26, -7, 1, 26] {
            let h = m.channel_at(a, b, k, 0.0);
            assert!((h - Complex64::ONE).abs() < 1e-12, "k={k}");
        }
        assert_eq!(m.channel_at(b, a, 1, 0.0), Complex64::ZERO, "no reverse link");
    }

    #[test]
    fn cfo_rotates_channel_over_time() {
        let mut m = medium(2);
        let cfo = 1_000.0;
        let a = m.add_node(PhaseTrajectory::fixed(FC, cfo), 0.0);
        let b = clean_node(&mut m);
        m.set_link(a, b, Link::ideal());
        let h0 = m.channel_at(a, b, 1, 0.0);
        let t = 1e-3;
        let h1 = m.channel_at(a, b, 1, t);
        let expected_rot = 2.0 * std::f64::consts::PI * cfo * t;
        let got = (h1 * h0.conj()).arg();
        // Tolerance admits the (physically correct) SFO phase ramp the
        // shared crystal adds: ~4e-4 rad here.
        assert!(
            (jmb_dsp::complex::wrap_phase(got - expected_rot)).abs() < 1e-3,
            "rotation {got} vs {expected_rot}"
        );
    }

    #[test]
    fn channel_matrix_shape_and_content() {
        let mut m = medium(3);
        let t1 = clean_node(&mut m);
        let t2 = clean_node(&mut m);
        let r1 = clean_node(&mut m);
        let r2 = clean_node(&mut m);
        let mut link = Link::ideal();
        link.gain = Complex64::new(0.5, 0.0);
        m.set_link(t1, r1, Link::ideal());
        m.set_link(t2, r2, link);
        let h = m.channel_matrix(&[t1, t2], &[r1, r2], 1, 0.0);
        assert_eq!(h.rows(), 2);
        assert_eq!(h.cols(), 2);
        assert!((h[(0, 0)] - Complex64::ONE).abs() < 1e-12);
        assert!((h[(1, 1)] - Complex64::new(0.5, 0.0)).abs() < 1e-12);
        assert_eq!(h[(0, 1)], Complex64::ZERO);
        assert_eq!(h[(1, 0)], Complex64::ZERO);
    }

    #[test]
    fn transmit_symbol_superposes() {
        let mut m = medium(4);
        let t1 = clean_node(&mut m);
        let t2 = clean_node(&mut m);
        let rx = clean_node(&mut m);
        m.set_link(t1, rx, Link::ideal());
        m.set_link(t2, rx, Link::ideal());
        let p = m.params().clone();
        let mut bins = vec![Complex64::ZERO; p.fft_size];
        bins[p.bin(5)] = Complex64::ONE;
        let neg: Vec<Complex64> = bins.iter().map(|&x| -x).collect();
        let out = m.transmit_symbol(&[(t1, &bins), (t2, &neg)], &[rx], 0.0);
        assert_eq!(out.len(), 1);
        assert!(out[0][p.bin(5)].abs() < 1e-12, "perfect null");
        let out2 = m.transmit_symbol(&[(t1, &bins), (t2, &bins)], &[rx], 0.0);
        assert!((out2[0][p.bin(5)] - Complex64::real(2.0)).abs() < 1e-12);
    }

    #[test]
    fn noise_power_per_bin() {
        let mut m = medium(5);
        let rx = m.add_node(PhaseTrajectory::fixed(FC, 0.0), 0.02);
        let p = m.params().clone();
        let mut acc = Vec::new();
        for i in 0..200 {
            let out = m.transmit_symbol(&[], &[rx], i as f64 * 8e-6);
            for &k in &p.occupied_subcarriers() {
                acc.push(out[0][p.bin(k)]);
            }
        }
        let pw = mean_power(&acc);
        assert!((pw - 0.02).abs() < 0.002, "noise power {pw}");
    }

    #[test]
    fn sfo_creates_subcarrier_ramp() {
        let mut m = medium(6);
        // +10 ppm transmitter.
        let offset = 10e-6 * FC;
        let a = m.add_node(PhaseTrajectory::fixed(FC, offset), 0.0);
        let b = clean_node(&mut m);
        m.set_link(a, b, Link::ideal());
        let t = 2e-3; // 2 ms of clock slip
        let h_low = m.channel_at(a, b, -20, t);
        let h_high = m.channel_at(a, b, 20, t);
        // CFO rotation is common; the differential phase across subcarriers
        // comes from SFO slip: Δφ = 2π·(f_high − f_low)·(ppm·t).
        let p = m.params().clone();
        let slip = 10e-6 * t;
        let expected =
            2.0 * std::f64::consts::PI * 40.0 * p.subcarrier_spacing() * slip;
        let got = (h_high * h_low.conj()).arg();
        assert!(
            (jmb_dsp::complex::wrap_phase(got - expected)).abs() < 1e-6,
            "ramp {got} vs {expected}"
        );
    }

    #[test]
    fn decompose_like_paper_r_h_t() {
        // The medium must satisfy H(t) = R(t)·H·T(t) with diagonal R, T —
        // verify by checking h_ji(t)/h_ji(0) = e^{j(ω_i−ω_j)t} independent
        // of the static channel.
        let mut m = medium(7);
        let tx1 = m.add_node(PhaseTrajectory::fixed(FC, 500.0), 0.0);
        let tx2 = m.add_node(PhaseTrajectory::fixed(FC, -300.0), 0.0);
        let rx = m.add_node(PhaseTrajectory::fixed(FC, 120.0), 0.0);
        let mut l1 = Link::ideal();
        l1.gain = Complex64::from_polar(0.7, 1.0);
        let mut l2 = Link::ideal();
        l2.gain = Complex64::from_polar(0.3, -2.0);
        m.set_link(tx1, rx, l1);
        m.set_link(tx2, rx, l2);
        let t = 0.5e-3;
        for (tx, f_tx) in [(tx1, 500.0), (tx2, -300.0)] {
            let h0 = m.channel_at(tx, rx, 3, 0.0);
            let ht = m.channel_at(tx, rx, 3, t);
            let ratio = ht / h0;
            let expected = Complex64::cis(2.0 * std::f64::consts::PI * (f_tx - 120.0) * t);
            // Tolerance admits the shared-crystal SFO ramp (~2e-4 rad).
            assert!((ratio - expected).abs() < 1e-3, "tx offset {f_tx}");
        }
    }

    #[test]
    fn fading_evolution_changes_links() {
        let mut m = medium(8);
        let a = clean_node(&mut m);
        let b = clean_node(&mut m);
        let mut rng = jmb_dsp::rng::rng_from_seed(77);
        let link = Link::new(
            Complex64::ONE,
            0.0,
            jmb_channel::Multipath::new(jmb_channel::MultipathSpec::indoor_nlos(), &mut rng),
        );
        m.set_link(a, b, link);
        let h0 = m.channel_at(a, b, 5, 0.0);
        m.evolve_fading(10.0); // many coherence times
        let h1 = m.channel_at(a, b, 5, 0.0);
        assert!((h0 - h1).abs() > 1e-6, "fading did not evolve");
    }
}
