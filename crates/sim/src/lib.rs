//! # jmb-sim — the simulated radio medium
//!
//! A deterministic, discrete-event complex-baseband radio simulator. It is
//! the stand-in for "the air" in the paper's testbed, at two fidelities:
//!
//! * [`medium::Medium`] — **sample-level**: every transmitted waveform is
//!   resampled onto the receiver's (offset) sample clock, convolved with its
//!   multipath taps, rotated by the instantaneous phase difference of the two
//!   endpoints' oscillators, superposed with every other concurrent waveform,
//!   and drowned in AWGN. Nothing about OFDM is assumed — which is exactly
//!   why decoding success here is evidence the protocol works.
//! * [`freq::SubcarrierMedium`] — **per-subcarrier**: channels are complex
//!   gains per occupied subcarrier and oscillator phases advance per OFDM
//!   symbol. It transports 64-bin symbol vectors directly. Orders of
//!   magnitude faster; used for the large throughput sweeps (Figs. 8–13)
//!   and cross-validated against the sample-level medium in tests.
//!
//! Fault injection (packet drops, noise bursts — in the spirit of smoltcp's
//! example fault options) lives in [`fault`]; event tracing comes from the
//! workspace-wide [`jmb_obs`] observability crate (re-exported via
//! [`trace`]).
//!
//! Determinism: the medium owns one RNG (for noise and faults); node
//! oscillators own theirs. Same seeds ⇒ same waveforms, bit for bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod freq;
pub mod medium;
pub mod trace;

pub use fault::{
    ControlFaults, FaultConfig, FaultConfigBuilder, FaultError, FaultSchedule, FaultWindow,
};
pub use freq::{InstantPhasors, StaticChannel, SubcarrierMedium};
pub use medium::{Medium, NodeId, Transmission};
pub use trace::{
    read_jsonl, DropCause, Event, EventKind, FilterSink, JsonLinesSink, RingBufferSink, StopCause,
    SyncStrategyId, Trace, TraceQuery, TraceSink,
};
