//! The sample-level radio medium.
//!
//! Physics applied to every (transmission, receiver) pair:
//!
//! 1. **Sample clocks** — the transmitter's DAC and receiver's ADC run at
//!    `fs·(1+ppm)` of their own crystals, so the waveform is resampled at
//!    ratio `rate_tx/rate_rx` (sampling-frequency offset).
//! 2. **Propagation delay** — fractional-sample delay per the link geometry.
//! 3. **Multipath** — tapped-delay-line convolution.
//! 4. **Carrier offset & phase noise** — rotation by
//!    `e^{j(φ_tx(t) − φ_rx(t))}` at every output sample, with φ from each
//!    node's [`PhaseTrajectory`].
//! 5. **Superposition** — concurrent transmissions simply add. This is what
//!    makes *joint* beamforming meaningful: nulls only form if the phases
//!    are right.
//! 6. **AWGN** — per-receiver noise floor.

use crate::fault::{FaultConfig, FaultSchedule};
use crate::trace::{DropCause, EventKind, Trace};
use jmb_channel::{Link, PhaseTrajectory};
use jmb_dsp::delay::interpolate_at;
use jmb_dsp::rng::{complex_gaussian, JmbRng};
use jmb_dsp::Complex64;
use jmb_phy::params::OfdmParams;
use rand::Rng;

/// Handle to a node registered with a [`Medium`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

struct Node {
    traj: PhaseTrajectory,
    /// Complex AWGN variance per *time-domain sample* at this receiver.
    noise_var: f64,
}

/// One scheduled waveform on the air.
#[derive(Debug, Clone)]
pub struct Transmission {
    /// Transmitting node.
    pub tx: NodeId,
    /// Global time the first sample leaves the antenna, seconds.
    pub start_s: f64,
    /// Complex-baseband samples at the transmitter's nominal sample rate.
    pub samples: Vec<Complex64>,
}

/// The air.
pub struct Medium {
    params: OfdmParams,
    nodes: Vec<Node>,
    /// `links[tx][rx]`.
    links: Vec<Vec<Option<Link>>>,
    transmissions: Vec<Transmission>,
    /// Scheduled extra-noise windows (fault injection).
    bursts: Vec<(NodeId, f64, f64, f64)>, // (rx, start_s, duration_s, var)
    fault: FaultSchedule,
    /// Event trace.
    pub trace: Trace,
    rng: JmbRng,
}

impl Medium {
    /// Creates an empty medium.
    pub fn new(params: OfdmParams, seed: u64) -> Self {
        Medium {
            params,
            nodes: Vec::new(),
            links: Vec::new(),
            transmissions: Vec::new(),
            bursts: Vec::new(),
            fault: FaultSchedule::none(),
            trace: Trace::new(),
            rng: jmb_dsp::rng::rng_from_seed(seed),
        }
    }

    /// The numerology the medium operates at.
    pub fn params(&self) -> &OfdmParams {
        &self.params
    }

    /// Registers a node with its oscillator trajectory and receiver noise
    /// variance (per time-domain sample).
    pub fn add_node(&mut self, traj: PhaseTrajectory, noise_var: f64) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { traj, noise_var });
        for row in self.links.iter_mut() {
            row.push(None);
        }
        self.links.push(vec![None; self.nodes.len()]);
        id
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The receiver noise variance (per time-domain sample) at `node`.
    pub fn noise_var(&self, node: NodeId) -> f64 {
        self.nodes[node.0].noise_var
    }

    /// Overrides the receiver noise variance (per time-domain sample) at
    /// `node`. A multi-cell deployment uses this to fold aggregate
    /// out-of-cell interference into a node's effective noise floor
    /// (Gaussian approximation of many distant co-channel transmitters).
    pub fn set_noise_var(&mut self, node: NodeId, noise_var: f64) {
        self.nodes[node.0].noise_var = noise_var;
    }

    /// Installs the directional link `tx → rx`.
    pub fn set_link(&mut self, tx: NodeId, rx: NodeId, link: Link) {
        self.links[tx.0][rx.0] = Some(link);
    }

    /// Installs the same link in both directions (reciprocal channel).
    pub fn set_reciprocal_link(&mut self, a: NodeId, b: NodeId, link: Link) {
        self.links[a.0][b.0] = Some(link.clone());
        self.links[b.0][a.0] = Some(link);
    }

    /// Mutable access to a link (e.g. to evolve its fading).
    pub fn link_mut(&mut self, tx: NodeId, rx: NodeId) -> Option<&mut Link> {
        self.links[tx.0][rx.0].as_mut()
    }

    /// Shared access to a link.
    pub fn link(&self, tx: NodeId, rx: NodeId) -> Option<&Link> {
        self.links[tx.0][rx.0].as_ref()
    }

    /// Mutable access to a node's oscillator trajectory.
    pub fn trajectory_mut(&mut self, node: NodeId) -> &mut PhaseTrajectory {
        &mut self.nodes[node.0].traj
    }

    /// Configures constant (time-invariant) fault injection.
    pub fn set_fault(&mut self, fault: FaultConfig) {
        self.fault = FaultSchedule::constant(fault);
    }

    /// Configures time-windowed fault injection (loss storms).
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        self.fault = schedule;
    }

    /// The fault config in effect at time `t`.
    pub fn fault_at(&self, t: f64) -> &FaultConfig {
        self.fault.config_at(t)
    }

    /// Draws whether slave AP node `slave` misses the lead's sync header at
    /// time `t`. Gated on the probability so fault-free runs make no RNG
    /// draws and stay byte-identical with cleanly-seeded runs.
    pub fn draw_sync_miss(&mut self, slave: usize, t: f64) -> bool {
        let p = self.fault.config_at(t).control.sync_loss_for(slave);
        p > 0.0 && self.rng.gen::<f64>() < p
    }

    /// Draws whether a channel-measurement exchange at time `t` is lost.
    /// Gated like [`Medium::draw_sync_miss`].
    pub fn draw_meas_loss(&mut self, t: f64) -> bool {
        let p = self.fault.config_at(t).control.meas_loss_chance;
        p > 0.0 && self.rng.gen::<f64>() < p
    }

    /// First payload sample index eligible for fault corruption: past the
    /// 320-sample preamble and the 80-sample SIGNAL symbol, so sync and rate
    /// decoding survive and corruption surfaces as a CRC rejection.
    const CORRUPT_FROM: usize = 400;

    /// Schedules a waveform. `start_s` is global time of the first sample.
    ///
    /// Under fault injection the transmission may be silently dropped or
    /// have its payload samples corrupted (both recorded in the trace).
    pub fn transmit(&mut self, tx: NodeId, start_s: f64, mut samples: Vec<Complex64>) {
        let f = self.fault.config_at(start_s);
        let (drop_chance, corrupt_chance) = (f.drop_chance, f.corrupt_chance);
        if drop_chance > 0.0 && self.rng.gen::<f64>() < drop_chance {
            self.trace.emit(
                start_s,
                EventKind::Dropped {
                    node: tx.0,
                    cause: DropCause::Fault,
                },
            );
            return;
        }
        if corrupt_chance > 0.0
            && samples.len() > Self::CORRUPT_FROM
            && self.rng.gen::<f64>() < corrupt_chance
        {
            // Negate a random quarter of the payload-region samples: severe
            // enough that the descrambled bits fail the CRC, but the frame
            // still synchronises.
            for s in samples.iter_mut().skip(Self::CORRUPT_FROM) {
                if self.rng.gen::<f64>() < 0.25 {
                    *s = -*s;
                }
            }
            self.trace
                .emit(start_s, EventKind::Corrupted { node: tx.0 });
        }
        self.trace.emit(
            start_s,
            EventKind::Transmit {
                node: tx.0,
                len: samples.len(),
                power: jmb_dsp::complex::mean_power(&samples),
            },
        );
        self.transmissions.push(Transmission {
            tx,
            start_s,
            samples,
        });
    }

    /// Injects a burst of extra noise at a receiver (fault injection).
    pub fn inject_noise_burst(&mut self, rx: NodeId, start_s: f64, duration_s: f64, var: f64) {
        self.bursts.push((rx, start_s, duration_s, var));
    }

    /// Renders what `rx` hears between `start_s` and
    /// `start_s + n/fs_rx`: superposition of all transmissions through their
    /// links, plus AWGN and any noise bursts.
    ///
    /// A node never hears its own transmissions (half-duplex front end).
    pub fn render_rx(&mut self, rx: NodeId, start_s: f64, n: usize) -> Vec<Complex64> {
        let fs = self.params.sample_rate();
        let ratio_rx = self.nodes[rx.0].traj.sample_ratio();
        let ts_rx = 1.0 / (fs * ratio_rx);

        // Output sample times on the receiver's clock.
        let times: Vec<f64> = (0..n).map(|m| start_s + m as f64 * ts_rx).collect();

        // Receiver phase at each output time.
        let rx_phases: Vec<f64> = times
            .iter()
            .map(|&t| self.nodes[rx.0].traj.phase_at(t))
            .collect();

        // Start with AWGN.
        let noise_var = self.nodes[rx.0].noise_var;
        let mut out: Vec<Complex64> = (0..n)
            .map(|_| complex_gaussian(&mut self.rng, noise_var))
            .collect();

        // Noise bursts.
        for &(brx, bstart, bdur, bvar) in &self.bursts {
            if brx != rx {
                continue;
            }
            for (m, &t) in times.iter().enumerate() {
                if t >= bstart && t < bstart + bdur {
                    out[m] += complex_gaussian(&mut self.rng, bvar);
                }
            }
        }

        // Superpose every transmission.
        let end_s = start_s + n as f64 * ts_rx;
        for ti in 0..self.transmissions.len() {
            let (tx_id, tx_start, tx_len) = {
                let t = &self.transmissions[ti];
                (t.tx, t.start_s, t.samples.len())
            };
            if tx_id == rx {
                continue;
            }
            let Some(link) = self.links[tx_id.0][rx.0].clone() else {
                continue;
            };
            let ratio_tx = self.nodes[tx_id.0].traj.sample_ratio();
            let fs_tx = fs * ratio_tx;
            let tx_dur = tx_len as f64 / fs_tx;
            // Quick overlap rejection (with tap-delay + interpolation-kernel
            // slack).
            let slack = link.delay_s + link.fading.max_delay_s() + 32.0 / fs;
            if tx_start > end_s || tx_start + tx_dur + slack < start_s {
                continue;
            }
            // Tx phase at each output time.
            let tx_phases: Vec<f64> = times
                .iter()
                .map(|&t| self.nodes[tx_id.0].traj.phase_at(t))
                .collect();
            let taps = link.fading.taps();
            let samples = &self.transmissions[ti].samples;
            for (m, &t) in times.iter().enumerate() {
                // Input-sample position (transmitter clock) for this output
                // instant, before tap delays.
                let base_pos = (t - tx_start - link.delay_s) * fs_tx;
                if base_pos < -(taps.len() as f64 * 8.0) - 32.0 || base_pos > tx_len as f64 + 32.0 {
                    continue;
                }
                let mut acc = Complex64::ZERO;
                for &(tau, g) in &taps {
                    if g == Complex64::ZERO {
                        continue;
                    }
                    let pos = base_pos - tau * fs_tx;
                    let v = interpolate_at(samples, pos);
                    if v != Complex64::ZERO {
                        acc = g.mul_add(v, acc);
                    }
                }
                if acc != Complex64::ZERO {
                    let rot = Complex64::cis(tx_phases[m] - rx_phases[m]);
                    out[m] = (link.gain * rot).mul_add(acc, out[m]);
                }
            }
        }
        self.trace
            .emit(start_s, EventKind::Render { node: rx.0, len: n });
        out
    }

    /// Discards all scheduled transmissions and noise bursts that end before
    /// `before_s` (keeps memory bounded in long simulations).
    pub fn expire(&mut self, before_s: f64) {
        let fs = self.params.sample_rate();
        self.transmissions
            .retain(|t| t.start_s + t.samples.len() as f64 / fs + 1e-3 >= before_s);
        self.bursts
            .retain(|&(_, start, dur, _)| start + dur >= before_s);
    }

    /// Removes every scheduled transmission.
    pub fn clear_transmissions(&mut self) {
        self.transmissions.clear();
    }

    /// Number of transmissions currently on the air.
    pub fn transmission_count(&self) -> usize {
        self.transmissions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmb_channel::multipath::{Multipath, MultipathSpec};
    use jmb_channel::oscillator::OscillatorSpec;
    use jmb_dsp::complex::mean_power;
    use jmb_phy::preamble;

    const FC: f64 = 2.437e9;

    fn quiet_medium(seed: u64) -> Medium {
        Medium::new(OfdmParams::default(), seed)
    }

    fn clean_node(m: &mut Medium) -> NodeId {
        m.add_node(PhaseTrajectory::fixed(FC, 0.0), 0.0)
    }

    #[test]
    fn silence_is_noise_only() {
        let mut m = quiet_medium(1);
        let rx = m.add_node(PhaseTrajectory::fixed(FC, 0.0), 0.01);
        let out = m.render_rx(rx, 0.0, 10_000);
        let p = mean_power(&out);
        assert!((p - 0.01).abs() < 0.001, "noise power {p}");
    }

    #[test]
    fn ideal_link_passes_waveform() {
        let mut m = quiet_medium(2);
        let tx = clean_node(&mut m);
        let rx = clean_node(&mut m);
        m.set_link(tx, rx, Link::ideal());
        let wave = preamble::preamble(m.params());
        m.transmit(tx, 0.0, wave.clone());
        let out = m.render_rx(rx, 0.0, wave.len());
        for (i, (o, w)) in out.iter().zip(&wave).enumerate().skip(8) {
            assert!((*o - *w).abs() < 1e-6, "sample {i}: {o} vs {w}");
        }
    }

    #[test]
    fn no_link_means_silence() {
        let mut m = quiet_medium(3);
        let tx = clean_node(&mut m);
        let rx = clean_node(&mut m);
        m.transmit(tx, 0.0, preamble::preamble(m.params()));
        let out = m.render_rx(rx, 0.0, 320);
        assert!(mean_power(&out) < 1e-20);
    }

    #[test]
    fn node_does_not_hear_itself() {
        let mut m = quiet_medium(4);
        let tx = clean_node(&mut m);
        m.set_link(tx, tx, Link::ideal());
        m.transmit(tx, 0.0, preamble::preamble(m.params()));
        let out = m.render_rx(tx, 0.0, 320);
        assert!(mean_power(&out) < 1e-20);
    }

    #[test]
    fn cfo_rotates_received_waveform() {
        let mut m = quiet_medium(5);
        let cfo = 5_000.0;
        let tx = m.add_node(PhaseTrajectory::fixed(FC, cfo), 0.0);
        let rx = clean_node(&mut m);
        m.set_link(tx, rx, Link::ideal());
        let wave = preamble::preamble(m.params());
        m.transmit(tx, 0.0, wave.clone());
        let out = m.render_rx(rx, 0.0, wave.len());
        // Estimate CFO from the received STF — must match the injected one.
        let est = jmb_phy::sync::coarse_cfo(m.params(), &out[16..160]);
        assert!((est - cfo).abs() < 20.0, "est {est}");
    }

    #[test]
    fn delay_shifts_waveform() {
        let mut m = quiet_medium(6);
        let tx = clean_node(&mut m);
        let rx = clean_node(&mut m);
        let mut link = Link::ideal();
        link.delay_s = 10.0 / m.params().sample_rate(); // 10 samples
        m.set_link(tx, rx, link);
        let wave = preamble::preamble(m.params());
        m.transmit(tx, 0.0, wave.clone());
        let out = m.render_rx(rx, 0.0, wave.len() + 20);
        for (i, s) in out.iter().take(8).enumerate() {
            assert!(s.abs() < 1e-9, "leading sample {i} not empty");
        }
        for i in 20..wave.len() {
            assert!((out[i + 10] - wave[i]).abs() < 1e-6, "sample {i}");
        }
    }

    #[test]
    fn superposition_of_two_transmitters() {
        let mut m = quiet_medium(7);
        let tx1 = clean_node(&mut m);
        let tx2 = clean_node(&mut m);
        let rx = clean_node(&mut m);
        m.set_link(tx1, rx, Link::ideal());
        m.set_link(tx2, rx, Link::ideal());
        let wave = preamble::preamble(m.params());
        m.transmit(tx1, 0.0, wave.clone());
        m.transmit(tx2, 0.0, wave.clone());
        let out = m.render_rx(rx, 0.0, wave.len());
        // Identical in-phase copies add coherently: amplitude doubles.
        for i in 16..300 {
            assert!((out[i] - wave[i] * 2.0).abs() < 1e-6, "sample {i}");
        }
    }

    #[test]
    fn antiphase_transmitters_cancel() {
        // The essence of nulling: equal-amplitude opposite-phase signals
        // produce (near) silence.
        let mut m = quiet_medium(8);
        let tx1 = clean_node(&mut m);
        let tx2 = clean_node(&mut m);
        let rx = clean_node(&mut m);
        m.set_link(tx1, rx, Link::ideal());
        m.set_link(tx2, rx, Link::ideal());
        let wave = preamble::preamble(m.params());
        let inverted: Vec<Complex64> = wave.iter().map(|&x| -x).collect();
        m.transmit(tx1, 0.0, wave.clone());
        m.transmit(tx2, 0.0, inverted);
        let out = m.render_rx(rx, 0.0, wave.len());
        assert!(mean_power(&out) < 1e-18, "residual {}", mean_power(&out));
    }

    #[test]
    fn multipath_convolution_applied() {
        let mut m = quiet_medium(9);
        let tx = clean_node(&mut m);
        let rx = clean_node(&mut m);
        // Build a deterministic 2-tap channel at one-sample spacing.
        let spec = MultipathSpec {
            n_taps: 2,
            tap_spacing_s: 1.0 / m.params().sample_rate(),
            rms_delay_spread_s: 1.0 / m.params().sample_rate(),
            rician_k_db: None,
            coherence_time_s: f64::INFINITY,
        };
        let mut rng = jmb_dsp::rng::rng_from_seed(1);
        let mut fading = Multipath::new(spec, &mut rng);
        // Overwrite taps deterministically via evolve-free construction:
        // easiest is to check linearity against the reported taps instead.
        let taps = fading.taps();
        let mut link = Link::ideal();
        link.fading = fading.clone();
        m.set_link(tx, rx, link);
        let wave = preamble::preamble(m.params());
        m.transmit(tx, 0.0, wave.clone());
        let out = m.render_rx(rx, 0.0, wave.len() + 4);
        // Manual convolution with the same taps.
        for i in 40..200 {
            let mut want = Complex64::ZERO;
            for &(tau, g) in &taps {
                let d = (tau * m.params().sample_rate()).round() as usize;
                if i >= d {
                    want += g * wave[i - d];
                }
            }
            assert!(
                (out[i] - want).abs() < 1e-5,
                "sample {i}: {} vs {want}",
                out[i]
            );
        }
        // Silence fading's unused-var warning paths.
        fading.evolve(0.0, &mut rng);
    }

    #[test]
    fn sample_clock_offset_resamples() {
        // +100 ppm tx clock (exaggerated for test visibility): after 10 000
        // receiver samples, the tx waveform has slipped a full sample.
        let mut m = quiet_medium(10);
        let spec = OscillatorSpec::ideal();
        let _ = spec;
        let offset_hz = 100e-6 * FC; // +100 ppm
        let tx = m.add_node(PhaseTrajectory::fixed(FC, offset_hz), 0.0);
        let rx = clean_node(&mut m);
        m.set_link(tx, rx, Link::ideal());
        // A long constant-frequency tone.
        let n = 12_000usize;
        let f = 0.05; // cycles per tx sample
        let tone: Vec<Complex64> = (0..n)
            .map(|i| Complex64::cis(2.0 * std::f64::consts::PI * f * i as f64))
            .collect();
        m.transmit(tx, 0.0, tone);
        let out = m.render_rx(rx, 0.0, n - 100);
        // At rx sample m, tx position ≈ m·(1+1e-4). Remove the CFO rotation
        // (the carrier offset also rotates the baseband) then compare phase.
        let ts = 1.0 / m.params().sample_rate();
        for &i in &[5_000usize, 10_000] {
            let t = i as f64 * ts;
            let cfo_rot = Complex64::cis(2.0 * std::f64::consts::PI * offset_hz * t);
            let expected_pos = i as f64 * (1.0 + 1e-4);
            let expected = Complex64::cis(2.0 * std::f64::consts::PI * f * expected_pos) * cfo_rot;
            assert!(
                (out[i] - expected).abs() < 0.05,
                "sample {i}: {} vs {expected}",
                out[i]
            );
        }
    }

    #[test]
    fn drop_fault_suppresses_transmission() {
        let mut m = quiet_medium(11);
        m.trace.enable();
        let tx = clean_node(&mut m);
        let rx = clean_node(&mut m);
        m.set_link(tx, rx, Link::ideal());
        m.set_fault(FaultConfig::with_drop_chance(1.0));
        m.transmit(tx, 0.0, preamble::preamble(m.params()));
        assert_eq!(m.transmission_count(), 0);
        let out = m.render_rx(rx, 0.0, 320);
        assert!(mean_power(&out) < 1e-20);
        assert_eq!(m.trace.drop_count_by(DropCause::Fault), 1);
        m.trace.query().assert_monotone_time();
    }

    #[test]
    fn corrupt_fault_flips_payload_but_not_preamble() {
        let mut m = quiet_medium(14);
        m.trace.enable();
        let tx = clean_node(&mut m);
        let rx = clean_node(&mut m);
        m.set_link(tx, rx, Link::ideal());
        m.set_fault(FaultConfig::with_corrupt_chance(1.0));
        // A constant-amplitude waveform long enough to have a payload region.
        let wave = vec![Complex64::ONE; 1_000];
        m.transmit(tx, 0.0, wave.clone());
        assert_eq!(m.transmission_count(), 1);
        assert_eq!(m.trace.corrupt_count(), 1);
        let out = m.render_rx(rx, 0.0, wave.len());
        // Samples before CORRUPT_FROM are untouched (skip the interpolation
        // edge at the very start).
        for i in 16..Medium::CORRUPT_FROM - 16 {
            assert!((out[i] - wave[i]).abs() < 1e-6, "preamble sample {i}");
        }
        // Some payload samples are negated.
        let flipped = (Medium::CORRUPT_FROM..wave.len() - 16)
            .filter(|&i| (out[i] + wave[i]).abs() < 1e-6)
            .count();
        assert!(flipped > 50, "only {flipped} samples corrupted");
    }

    #[test]
    fn short_waveform_is_never_corrupted() {
        let mut m = quiet_medium(15);
        m.trace.enable();
        let tx = clean_node(&mut m);
        m.set_fault(FaultConfig::with_corrupt_chance(1.0));
        // Sync headers (320-sample preamble) are shorter than CORRUPT_FROM.
        m.transmit(tx, 0.0, preamble::preamble(m.params()));
        assert_eq!(m.trace.corrupt_count(), 0);
    }

    #[test]
    fn noise_burst_adds_power_in_window() {
        let mut m = quiet_medium(12);
        let rx = m.add_node(PhaseTrajectory::fixed(FC, 0.0), 1e-6);
        let ts = 1.0 / m.params().sample_rate();
        m.inject_noise_burst(rx, 100.0 * ts, 100.0 * ts, 1.0);
        let out = m.render_rx(rx, 0.0, 400);
        let before = mean_power(&out[..90]);
        let during = mean_power(&out[110..190]);
        let after = mean_power(&out[210..]);
        assert!(during > before * 100.0, "burst {during} vs {before}");
        assert!(after < during / 100.0);
    }

    #[test]
    fn expire_retains_active() {
        let mut m = quiet_medium(13);
        let tx = clean_node(&mut m);
        let wave = vec![Complex64::ONE; 100];
        m.transmit(tx, 0.0, wave.clone());
        m.transmit(tx, 1.0, wave);
        assert_eq!(m.transmission_count(), 2);
        m.expire(0.5);
        assert_eq!(m.transmission_count(), 1);
    }
}
