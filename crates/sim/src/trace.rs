//! Lightweight event tracing.
//!
//! Records what happened on the medium — who transmitted when, what was
//! rendered, what was dropped — and at the link/traffic layer above it —
//! what was enqueued, which AP led a joint transmission, what was ACKed,
//! retried, or abandoned — for debugging and for tests that assert on
//! protocol behaviour rather than signal values. Disabled traces cost one
//! branch per event.

/// Why a transmission or packet was abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// Fault injection removed the waveform from the air (deep fade or an
    /// un-modelled collision).
    Fault,
    /// The link layer exhausted the packet's retry budget (§9: packets stay
    /// queued until ACKed — but not forever).
    RetryLimit,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A waveform was scheduled.
    Transmit {
        /// Node index.
        node: usize,
        /// Global start time, seconds.
        t: f64,
        /// Length in samples.
        len: usize,
        /// Mean sample power.
        power: f64,
    },
    /// A receive window was rendered.
    Render {
        /// Node index.
        node: usize,
        /// Global start time, seconds.
        t: f64,
        /// Length in samples.
        len: usize,
    },
    /// A transmission or packet was dropped.
    Dropped {
        /// Node index (transmitter for [`DropCause::Fault`], destination
        /// client for [`DropCause::RetryLimit`]).
        node: usize,
        /// Global time, seconds.
        t: f64,
        /// Why it was dropped.
        cause: DropCause,
    },
    /// A scheduled waveform had its payload samples corrupted in flight by
    /// fault injection (pre-CRC, so receivers see a CRC rejection).
    Corrupted {
        /// Transmitting node index.
        node: usize,
        /// Global start time, seconds.
        t: f64,
    },
    /// MAC: a downlink packet entered the shared queue.
    Enqueued {
        /// Destination client.
        client: usize,
        /// Queue-assigned packet id.
        id: u64,
        /// Global time, seconds.
        t: f64,
    },
    /// MAC: the designated AP of the head-of-queue packet was elected lead
    /// for a joint transmission (§9).
    LeadElected {
        /// Lead AP index.
        ap: usize,
        /// Global time, seconds.
        t: f64,
    },
    /// MAC: a joint batch was selected from the shared queue.
    BatchSelected {
        /// Number of packets (= concurrent streams) in the batch.
        n_packets: usize,
        /// Global time, seconds.
        t: f64,
    },
    /// MAC: a packet was acknowledged (asynchronously, §9).
    Acked {
        /// Destination client.
        client: usize,
        /// Queue-assigned packet id.
        id: u64,
        /// Global time, seconds.
        t: f64,
    },
    /// MAC: a packet was not acknowledged and returned to the queue for a
    /// future joint transmission.
    Retry {
        /// Destination client.
        client: usize,
        /// Queue-assigned packet id.
        id: u64,
        /// Attempts made so far.
        attempt: u32,
        /// Global time, seconds.
        t: f64,
    },
    /// An AP went down (fault schedule).
    ApDown {
        /// AP index.
        ap: usize,
        /// Global time, seconds.
        t: f64,
    },
    /// An AP recovered.
    ApUp {
        /// AP index.
        ap: usize,
        /// Global time, seconds.
        t: f64,
    },
    /// Control plane: a slave AP missed the lead's sync header for a joint
    /// transmission (fault injection or a physically failed measurement).
    SyncMissed {
        /// Slave AP index.
        slave: usize,
        /// Global time, seconds.
        t: f64,
    },
    /// Control plane: CSI age exceeded the staleness threshold and a
    /// re-measurement became due.
    CsiStale {
        /// Age of the oldest CSI entry, seconds.
        age_s: f64,
        /// Global time, seconds.
        t: f64,
    },
    /// Control plane: a re-measurement was scheduled (initial attempt or a
    /// backoff retry after a lost measurement frame).
    RemeasureScheduled {
        /// Earliest time the attempt may run, seconds.
        at: f64,
        /// Attempt number (1 = first retry after a failure).
        attempt: u32,
        /// Global time, seconds.
        t: f64,
    },
    /// Control plane: a measurement frame was lost and the re-measurement
    /// attempt failed.
    RemeasureFailed {
        /// Attempt number that failed.
        attempt: u32,
        /// Global time, seconds.
        t: f64,
    },
    /// Control plane: a slave AP accumulated enough consecutive sync-header
    /// misses to be marked degraded (excluded from joint batches until it
    /// re-syncs).
    ApDegraded {
        /// Slave AP index.
        ap: usize,
        /// Global time, seconds.
        t: f64,
    },
    /// Control plane: a degraded slave AP heard a sync header again and was
    /// restored to service.
    ApRestored {
        /// Slave AP index.
        ap: usize,
        /// Global time, seconds.
        t: f64,
    },
}

/// An append-only event log.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// Creates a disabled trace (enable with [`Trace::enable`]).
    pub fn new() -> Self {
        Trace {
            events: Vec::new(),
            enabled: false,
        }
    }

    /// Starts recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Stops recording (existing events are kept).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Records an event if enabled.
    pub fn push(&mut self, e: TraceEvent) {
        if self.enabled {
            self.events.push(e);
        }
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events matching a predicate.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }

    /// Number of transmissions recorded.
    pub fn transmit_count(&self) -> usize {
        self.count(|e| matches!(e, TraceEvent::Transmit { .. }))
    }

    /// Number of drops recorded (any cause).
    pub fn drop_count(&self) -> usize {
        self.count(|e| matches!(e, TraceEvent::Dropped { .. }))
    }

    /// Number of drops recorded with the given cause.
    pub fn drop_count_by(&self, cause: DropCause) -> usize {
        self.count(|e| matches!(e, TraceEvent::Dropped { cause: c, .. } if *c == cause))
    }

    /// Number of in-flight corruptions recorded.
    pub fn corrupt_count(&self) -> usize {
        self.count(|e| matches!(e, TraceEvent::Corrupted { .. }))
    }

    /// Number of MAC acknowledgments recorded.
    pub fn ack_count(&self) -> usize {
        self.count(|e| matches!(e, TraceEvent::Acked { .. }))
    }

    /// Number of MAC retries recorded.
    pub fn retry_count(&self) -> usize {
        self.count(|e| matches!(e, TraceEvent::Retry { .. }))
    }

    /// Number of missed sync headers recorded.
    pub fn sync_missed_count(&self) -> usize {
        self.count(|e| matches!(e, TraceEvent::SyncMissed { .. }))
    }

    /// Number of scheduled re-measurements recorded.
    pub fn remeasure_scheduled_count(&self) -> usize {
        self.count(|e| matches!(e, TraceEvent::RemeasureScheduled { .. }))
    }

    /// Number of failed re-measurements recorded.
    pub fn remeasure_failed_count(&self) -> usize {
        self.count(|e| matches!(e, TraceEvent::RemeasureFailed { .. }))
    }

    /// Number of AP degradations recorded.
    pub fn degraded_count(&self) -> usize {
        self.count(|e| matches!(e, TraceEvent::ApDegraded { .. }))
    }

    /// Number of AP restorations recorded.
    pub fn restored_count(&self) -> usize {
        self.count(|e| matches!(e, TraceEvent::ApRestored { .. }))
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        let mut t = Trace::new();
        t.push(TraceEvent::Dropped {
            node: 0,
            t: 0.0,
            cause: DropCause::Fault,
        });
        assert!(t.events().is_empty());
    }

    #[test]
    fn records_when_enabled() {
        let mut t = Trace::new();
        t.enable();
        t.push(TraceEvent::Transmit {
            node: 1,
            t: 0.5,
            len: 80,
            power: 0.01,
        });
        t.push(TraceEvent::Dropped {
            node: 2,
            t: 0.6,
            cause: DropCause::Fault,
        });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.transmit_count(), 1);
        assert_eq!(t.drop_count(), 1);
    }

    #[test]
    fn disable_keeps_history() {
        let mut t = Trace::new();
        t.enable();
        t.push(TraceEvent::Render {
            node: 0,
            t: 0.0,
            len: 10,
        });
        t.disable();
        t.push(TraceEvent::Dropped {
            node: 0,
            t: 1.0,
            cause: DropCause::Fault,
        });
        assert_eq!(t.events().len(), 1);
        t.clear();
        assert!(t.events().is_empty());
    }

    #[test]
    fn mac_level_events_and_counters() {
        let mut t = Trace::new();
        t.enable();
        t.push(TraceEvent::Enqueued {
            client: 0,
            id: 1,
            t: 0.0,
        });
        t.push(TraceEvent::LeadElected { ap: 2, t: 0.1 });
        t.push(TraceEvent::BatchSelected {
            n_packets: 3,
            t: 0.1,
        });
        t.push(TraceEvent::Acked {
            client: 0,
            id: 1,
            t: 0.2,
        });
        t.push(TraceEvent::Retry {
            client: 1,
            id: 2,
            attempt: 1,
            t: 0.2,
        });
        t.push(TraceEvent::Dropped {
            node: 1,
            t: 0.3,
            cause: DropCause::RetryLimit,
        });
        t.push(TraceEvent::ApDown { ap: 0, t: 0.4 });
        t.push(TraceEvent::ApUp { ap: 0, t: 0.5 });
        t.push(TraceEvent::Corrupted { node: 1, t: 0.6 });
        t.push(TraceEvent::SyncMissed { slave: 2, t: 0.7 });
        t.push(TraceEvent::CsiStale { age_s: 0.1, t: 0.7 });
        t.push(TraceEvent::RemeasureScheduled {
            at: 0.8,
            attempt: 1,
            t: 0.7,
        });
        t.push(TraceEvent::RemeasureFailed { attempt: 1, t: 0.8 });
        t.push(TraceEvent::ApDegraded { ap: 2, t: 0.9 });
        t.push(TraceEvent::ApRestored { ap: 2, t: 1.0 });
        assert_eq!(t.sync_missed_count(), 1);
        assert_eq!(t.remeasure_scheduled_count(), 1);
        assert_eq!(t.remeasure_failed_count(), 1);
        assert_eq!(t.degraded_count(), 1);
        assert_eq!(t.restored_count(), 1);
        assert_eq!(t.ack_count(), 1);
        assert_eq!(t.retry_count(), 1);
        assert_eq!(t.corrupt_count(), 1);
        assert_eq!(t.drop_count_by(DropCause::RetryLimit), 1);
        assert_eq!(t.drop_count_by(DropCause::Fault), 0);
        assert_eq!(t.drop_count(), 1);
    }
}
