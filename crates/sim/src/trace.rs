//! Event tracing — re-exported from [`jmb_obs`].
//!
//! The medium used to carry its own hand-rolled trace type; tracing now
//! lives in the workspace-wide observability crate so every layer (medium,
//! fast network, MAC, traffic simulator) logs through one timestamped,
//! seq-numbered [`Event`] pipeline with pluggable sinks and a replay/query
//! API. This module keeps the old import paths working.

pub use jmb_obs::{
    read_jsonl, DropCause, Event, EventKind, FilterSink, JsonLinesSink, RingBufferSink, StopCause,
    SyncStrategyId, Trace, TraceQuery, TraceSink,
};
