//! Lightweight event tracing.
//!
//! Records what happened on the medium — who transmitted when, what was
//! rendered, what was dropped — for debugging and for tests that assert on
//! protocol behaviour rather than signal values. Disabled traces cost one
//! branch per event.

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A waveform was scheduled.
    Transmit {
        /// Node index.
        node: usize,
        /// Global start time, seconds.
        t: f64,
        /// Length in samples.
        len: usize,
        /// Mean sample power.
        power: f64,
    },
    /// A receive window was rendered.
    Render {
        /// Node index.
        node: usize,
        /// Global start time, seconds.
        t: f64,
        /// Length in samples.
        len: usize,
    },
    /// A transmission was dropped by fault injection.
    Dropped {
        /// Node index.
        node: usize,
        /// Global start time, seconds.
        t: f64,
    },
}

/// An append-only event log.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// Creates a disabled trace (enable with [`Trace::enable`]).
    pub fn new() -> Self {
        Trace {
            events: Vec::new(),
            enabled: false,
        }
    }

    /// Starts recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Stops recording (existing events are kept).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Records an event if enabled.
    pub fn push(&mut self, e: TraceEvent) {
        if self.enabled {
            self.events.push(e);
        }
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of transmissions recorded.
    pub fn transmit_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Transmit { .. }))
            .count()
    }

    /// Number of drops recorded.
    pub fn drop_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Dropped { .. }))
            .count()
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        let mut t = Trace::new();
        t.push(TraceEvent::Dropped { node: 0, t: 0.0 });
        assert!(t.events().is_empty());
    }

    #[test]
    fn records_when_enabled() {
        let mut t = Trace::new();
        t.enable();
        t.push(TraceEvent::Transmit {
            node: 1,
            t: 0.5,
            len: 80,
            power: 0.01,
        });
        t.push(TraceEvent::Dropped { node: 2, t: 0.6 });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.transmit_count(), 1);
        assert_eq!(t.drop_count(), 1);
    }

    #[test]
    fn disable_keeps_history() {
        let mut t = Trace::new();
        t.enable();
        t.push(TraceEvent::Render {
            node: 0,
            t: 0.0,
            len: 10,
        });
        t.disable();
        t.push(TraceEvent::Dropped { node: 0, t: 1.0 });
        assert_eq!(t.events().len(), 1);
        t.clear();
        assert!(t.events().is_empty());
    }
}
