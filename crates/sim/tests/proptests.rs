//! Property-based tests for the simulated radio medium.

use jmb_channel::oscillator::PhaseTrajectory;
use jmb_channel::Link;
use jmb_dsp::complex::mean_power;
use jmb_dsp::Complex64;
use jmb_phy::params::OfdmParams;
use jmb_sim::{Medium, SubcarrierMedium};
use proptest::prelude::*;

const FC: f64 = 2.437e9;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn medium_is_linear_in_gain(gain in 0.01..10.0f64, seed in 0u64..100) {
        // Doubling the link gain must exactly double the received amplitude.
        let params = OfdmParams::default();
        let wave: Vec<Complex64> = (0..200)
            .map(|i| Complex64::cis(i as f64 * 0.23))
            .collect();
        let render = |g: f64| -> Vec<Complex64> {
            let mut m = Medium::new(params.clone(), seed);
            let tx = m.add_node(PhaseTrajectory::fixed(FC, 0.0), 0.0);
            let rx = m.add_node(PhaseTrajectory::fixed(FC, 0.0), 0.0);
            let mut link = Link::ideal();
            link.gain = Complex64::real(g);
            m.set_link(tx, rx, link);
            m.transmit(tx, 0.0, wave.clone());
            m.render_rx(rx, 0.0, 200)
        };
        let a = render(gain);
        let b = render(2.0 * gain);
        for (x, y) in a.iter().zip(&b).skip(30).take(140) {
            prop_assert!((*y - *x * 2.0).abs() < 1e-9 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn medium_superposition_is_additive(seed in 0u64..100) {
        // render(tx1 + tx2) == render(tx1) + render(tx2) with no noise.
        let params = OfdmParams::default();
        let w1: Vec<Complex64> = (0..150).map(|i| Complex64::cis(i as f64 * 0.1)).collect();
        let w2: Vec<Complex64> = (0..150).map(|i| Complex64::cis(i as f64 * 0.3 + 1.0)).collect();
        let build = |first: bool, second: bool| -> Vec<Complex64> {
            let mut m = Medium::new(params.clone(), seed);
            let t1 = m.add_node(PhaseTrajectory::fixed(FC, 500.0), 0.0);
            let t2 = m.add_node(PhaseTrajectory::fixed(FC, -300.0), 0.0);
            let rx = m.add_node(PhaseTrajectory::fixed(FC, 100.0), 0.0);
            m.set_link(t1, rx, Link::ideal());
            m.set_link(t2, rx, Link::ideal());
            if first {
                m.transmit(t1, 0.0, w1.clone());
            }
            if second {
                m.transmit(t2, 0.0, w2.clone());
            }
            m.render_rx(rx, 0.0, 150)
        };
        let both = build(true, true);
        let only1 = build(true, false);
        let only2 = build(false, true);
        for i in 0..150 {
            let sum = only1[i] + only2[i];
            prop_assert!((both[i] - sum).abs() < 1e-9 * (1.0 + sum.abs()), "sample {}", i);
        }
    }

    #[test]
    fn medium_noise_power_is_calibrated(noise in 1e-6..1e-2f64, seed in 0u64..50) {
        let params = OfdmParams::default();
        let mut m = Medium::new(params, seed);
        let rx = m.add_node(PhaseTrajectory::fixed(FC, 0.0), noise);
        let out = m.render_rx(rx, 0.0, 20_000);
        let p = mean_power(&out);
        prop_assert!((p / noise - 1.0).abs() < 0.1, "noise {} vs target {}", p, noise);
    }

    #[test]
    fn subcarrier_channel_is_deterministic(seed in 0u64..200, t in 0.0..0.05f64) {
        let params = OfdmParams::default();
        let mut rng = jmb_dsp::rng::rng_from_seed(seed);
        let link = Link::new(
            Complex64::from_polar(1.0, 0.4),
            20e-9,
            jmb_channel::Multipath::new(jmb_channel::MultipathSpec::indoor_nlos(), &mut rng),
        );
        let mut m = SubcarrierMedium::new(params, seed);
        let a = m.add_node(PhaseTrajectory::fixed(FC, 777.0), 0.0);
        let b = m.add_node(PhaseTrajectory::fixed(FC, -111.0), 0.0);
        m.set_link(a, b, link);
        let h1 = m.channel_at(a, b, 5, t);
        let h2 = m.channel_at(a, b, 5, t);
        prop_assert_eq!(h1, h2);
        prop_assert!(h1.is_finite());
    }

    #[test]
    fn subcarrier_transmit_matches_channel_at(seed in 0u64..100, k_pick in 0usize..52) {
        // Sending a unit symbol on one subcarrier must deliver exactly the
        // channel coefficient (no noise configured).
        let params = OfdmParams::default();
        let occupied = params.occupied_subcarriers();
        let k = occupied[k_pick];
        let mut m = SubcarrierMedium::new(params.clone(), seed);
        let a = m.add_node(PhaseTrajectory::fixed(FC, 1234.0), 0.0);
        let b = m.add_node(PhaseTrajectory::fixed(FC, 0.0), 0.0);
        m.set_link(a, b, Link::ideal());
        let mut bins = vec![Complex64::ZERO; params.fft_size];
        bins[params.bin(k)] = Complex64::ONE;
        let t = 1e-3;
        let out = m.transmit_symbol(&[(a, bins.as_slice())], &[b], t);
        let expected = m.channel_at(a, b, k, t);
        prop_assert!((out[0][params.bin(k)] - expected).abs() < 1e-12);
    }
}
