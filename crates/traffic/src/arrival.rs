//! Offered-load generation: per-client arrival processes and packet sizes.
//!
//! The paper's claim is that JMB scales capacity *with user demands* — so
//! demand has to be modelled as a process over time, not a fixed batch.
//! Two classical processes cover the evaluation space: Poisson (smooth
//! aggregate load) and on/off bursts (the heavy-tailed, idle-then-greedy
//! shape of real user traffic).

use jmb_dsp::rng::JmbRng;
use rand::Rng;

/// Packet-size distribution, bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PacketSizeDist {
    /// Every packet the same size.
    Fixed(usize),
    /// Uniform in `[min, max]`.
    Uniform {
        /// Smallest packet, bytes.
        min: usize,
        /// Largest packet, bytes.
        max: usize,
    },
    /// Internet-mix shape: small (ACK-sized) packets with probability
    /// `p_small`, full-sized otherwise.
    Bimodal {
        /// Small-packet size, bytes.
        small: usize,
        /// Large-packet size, bytes.
        large: usize,
        /// Probability of a small packet.
        p_small: f64,
    },
}

impl PacketSizeDist {
    /// Draws one packet size.
    pub fn sample(&self, rng: &mut JmbRng) -> usize {
        match *self {
            PacketSizeDist::Fixed(n) => n,
            PacketSizeDist::Uniform { min, max } => {
                debug_assert!(min <= max);
                rng.gen_range(min..=max)
            }
            PacketSizeDist::Bimodal {
                small,
                large,
                p_small,
            } => {
                if rng.gen::<f64>() < p_small {
                    small
                } else {
                    large
                }
            }
        }
    }

    /// Mean packet size, bytes.
    pub fn mean(&self) -> f64 {
        match *self {
            PacketSizeDist::Fixed(n) => n as f64,
            PacketSizeDist::Uniform { min, max } => (min + max) as f64 / 2.0,
            PacketSizeDist::Bimodal {
                small,
                large,
                p_small,
            } => small as f64 * p_small + large as f64 * (1.0 - p_small),
        }
    }
}

/// Arrival process for one client's downlink flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate_pps` packets/second.
    Poisson {
        /// Mean arrival rate, packets/second.
        rate_pps: f64,
    },
    /// Bursty on/off (interrupted Poisson): exponentially-distributed ON
    /// periods during which packets arrive at `burst_rate_pps`, separated
    /// by exponentially-distributed silent OFF periods.
    OnOff {
        /// Arrival rate during a burst, packets/second.
        burst_rate_pps: f64,
        /// Mean ON-period duration, seconds.
        mean_on_s: f64,
        /// Mean OFF-period duration, seconds.
        mean_off_s: f64,
    },
}

impl ArrivalProcess {
    /// Long-run mean arrival rate, packets/second.
    pub fn mean_rate_pps(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_pps } => rate_pps,
            ArrivalProcess::OnOff {
                burst_rate_pps,
                mean_on_s,
                mean_off_s,
            } => burst_rate_pps * mean_on_s / (mean_on_s + mean_off_s),
        }
    }
}

/// Exponential draw with the given mean (inverse-CDF of `U(0,1)`).
fn exp_sample(rng: &mut JmbRng, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    let u: f64 = rng.gen();
    -mean * (1.0 - u).max(1e-300).ln()
}

/// Incremental generator of one client's arrival times and packet sizes.
///
/// Owns its RNG (derived from the simulation master seed), so each client's
/// sequence is independent of every other client's and of event order.
#[derive(Debug)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    size: PacketSizeDist,
    rng: JmbRng,
    /// Time cursor: the last generated arrival (or the start time).
    t: f64,
    /// End of the current ON period (on/off only).
    on_until: f64,
}

impl ArrivalGen {
    /// Creates a generator starting at `t0`.
    pub fn new(process: ArrivalProcess, size: PacketSizeDist, rng: JmbRng, t0: f64) -> Self {
        let mut g = ArrivalGen {
            process,
            size,
            rng,
            t: t0,
            on_until: t0,
        };
        if let ArrivalProcess::OnOff { mean_on_s, .. } = process {
            g.on_until = t0 + exp_sample(&mut g.rng, mean_on_s);
        }
        g
    }

    /// Next arrival: absolute time and packet size, bytes. Times are
    /// strictly increasing.
    pub fn next_arrival(&mut self) -> (f64, usize) {
        let t = match self.process {
            ArrivalProcess::Poisson { rate_pps } => {
                self.t += exp_sample(&mut self.rng, 1.0 / rate_pps);
                self.t
            }
            ArrivalProcess::OnOff {
                burst_rate_pps,
                mean_on_s,
                mean_off_s,
            } => loop {
                let dt = exp_sample(&mut self.rng, 1.0 / burst_rate_pps);
                if self.t + dt <= self.on_until {
                    self.t += dt;
                    break self.t;
                }
                // The burst ended before this arrival: jump to the next ON
                // period (the exponential is memoryless, so discarding the
                // partial inter-arrival is exact).
                self.t = self.on_until + exp_sample(&mut self.rng, mean_off_s);
                self.on_until = self.t + exp_sample(&mut self.rng, mean_on_s);
            },
        };
        (t, self.size.sample(&mut self.rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmb_dsp::rng::derive_rng;

    #[test]
    fn poisson_rate_is_respected() {
        let mut g = ArrivalGen::new(
            ArrivalProcess::Poisson { rate_pps: 1000.0 },
            PacketSizeDist::Fixed(100),
            derive_rng(1, 0),
            0.0,
        );
        let n = 20_000;
        let mut last = 0.0;
        for _ in 0..n {
            let (t, size) = g.next_arrival();
            assert!(t > last, "times strictly increasing");
            assert_eq!(size, 100);
            last = t;
        }
        let rate = n as f64 / last;
        assert!((rate - 1000.0).abs() < 30.0, "measured rate {rate}");
    }

    #[test]
    fn onoff_mean_rate_matches_duty_cycle() {
        let proc = ArrivalProcess::OnOff {
            burst_rate_pps: 2000.0,
            mean_on_s: 0.01,
            mean_off_s: 0.03,
        };
        assert!((proc.mean_rate_pps() - 500.0).abs() < 1e-9);
        let mut g = ArrivalGen::new(proc, PacketSizeDist::Fixed(1), derive_rng(2, 0), 0.0);
        let n = 20_000;
        let mut last = 0.0;
        for _ in 0..n {
            last = g.next_arrival().0;
        }
        let rate = n as f64 / last;
        assert!(
            (rate - 500.0).abs() < 500.0 * 0.1,
            "long-run on/off rate {rate}"
        );
    }

    #[test]
    fn onoff_is_bursty() {
        // Squared coefficient of variation of inter-arrivals must exceed a
        // Poisson process's (CV² = 1).
        let mut g = ArrivalGen::new(
            ArrivalProcess::OnOff {
                burst_rate_pps: 5000.0,
                mean_on_s: 0.005,
                mean_off_s: 0.02,
            },
            PacketSizeDist::Fixed(1),
            derive_rng(3, 0),
            0.0,
        );
        let mut gaps = Vec::new();
        let mut last = 0.0;
        for _ in 0..10_000 {
            let (t, _) = g.next_arrival();
            gaps.push(t - last);
            last = t;
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / gaps.len() as f64;
        let cv2 = var / (mean * mean);
        assert!(cv2 > 2.0, "CV² {cv2} not bursty");
    }

    #[test]
    fn size_distributions() {
        let mut rng = derive_rng(4, 0);
        let u = PacketSizeDist::Uniform { min: 60, max: 1500 };
        for _ in 0..1000 {
            let s = u.sample(&mut rng);
            assert!((60..=1500).contains(&s));
        }
        let b = PacketSizeDist::Bimodal {
            small: 60,
            large: 1500,
            p_small: 0.5,
        };
        let mut smalls = 0;
        for _ in 0..2000 {
            if b.sample(&mut rng) == 60 {
                smalls += 1;
            }
        }
        assert!((800..=1200).contains(&smalls), "{smalls} small packets");
        assert!((b.mean() - 780.0).abs() < 1e-9);
        assert_eq!(PacketSizeDist::Fixed(9).mean(), 9.0);
    }

    #[test]
    fn deterministic_from_seed() {
        let run = |seed| {
            let mut g = ArrivalGen::new(
                ArrivalProcess::Poisson { rate_pps: 100.0 },
                PacketSizeDist::Uniform { min: 60, max: 1500 },
                derive_rng(seed, 7),
                0.0,
            );
            (0..100).map(|_| g.next_arrival()).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
