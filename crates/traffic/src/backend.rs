//! The PHY abstraction under the traffic event loop.
//!
//! The event loop only needs one thing from the physical layer: "serve this
//! joint batch from these live APs, tell me how long it took and who
//! ACKed". [`TransmitBackend`] captures exactly that, so the same traffic
//! simulation runs over the per-subcarrier [`FastNet`] (large sweeps) or
//! the sample-level [`JmbNetwork`] (full-PHY validation, fault injection
//! through the real CRC path).

use jmb_core::baseline;
use jmb_core::error::JmbError;
use jmb_core::fastnet::{FastConfig, FastNet};
use jmb_core::net::{JmbNetwork, NetConfig};
use jmb_dsp::rng::JmbRng;
use jmb_phy::esnr::MCS_THRESHOLD_DB;
use jmb_phy::rates::Mcs;
use rand::Rng;

/// Outcome of serving one joint batch.
#[derive(Debug, Clone)]
pub struct TxReport {
    /// Airtime the joint transmission consumed (data frame; the caller
    /// accounts header/turnaround separately if it wants), seconds.
    pub airtime_s: f64,
    /// Per-batch-packet acknowledgment (same order as `dests`).
    pub acked: Vec<bool>,
    /// Index into [`Mcs::ALL`] of the rate used.
    pub mcs_index: usize,
}

/// A PHY capable of serving MAC batches.
pub trait TransmitBackend {
    /// Number of APs in the array.
    fn n_aps(&self) -> usize;
    /// Number of clients.
    fn n_clients(&self) -> usize;
    /// Advances the PHY clock by `dt` seconds (oscillators drift).
    fn advance(&mut self, dt: f64);
    /// Serves one joint batch: one stream per entry of `dests` (distinct
    /// clients), every payload padded to `payload_len` bytes, transmitted
    /// by the APs in `active_aps`.
    fn transmit_batch(
        &mut self,
        dests: &[usize],
        payload_len: usize,
        active_aps: &[usize],
    ) -> Result<TxReport, JmbError>;
}

/// Per-subcarrier backend over [`FastNet`]: SINR → packet success through
/// an EESM-margin error model. Fast enough for load sweeps.
pub struct FastBackend {
    net: FastNet,
    rng: JmbRng,
    /// Channel age after which the next batch triggers re-measurement,
    /// seconds. The precoder is computed from `h_meas`, so under fading it
    /// goes stale; JMB re-measures on demand (§5.1). Default 50 ms.
    pub remeasure_interval_s: f64,
    since_meas_s: f64,
}

impl FastBackend {
    /// Builds the network, runs the measurement phase, and derives the
    /// ACK-model RNG from the config seed.
    pub fn new(cfg: FastConfig) -> Result<Self, JmbError> {
        let rng = jmb_dsp::rng::derive_rng(cfg.seed, 0x7AFF);
        let mut net = FastNet::new(cfg)?;
        net.run_measurement()?;
        Ok(FastBackend {
            net,
            rng,
            remeasure_interval_s: 50e-3,
            since_meas_s: 0.0,
        })
    }

    /// Access to the wrapped network (e.g. to evolve fading between runs).
    pub fn net_mut(&mut self) -> &mut FastNet {
        &mut self.net
    }

    /// Packet error rate from the EESM margin above the MCS threshold.
    ///
    /// Calibrated to the rate table's design point: ~10% PER right at
    /// threshold, an order of magnitude per ~2.3 dB of margin, saturating
    /// at 1 below threshold.
    pub fn per_from_margin(margin_db: f64) -> f64 {
        (0.1 * (-margin_db).exp()).min(1.0)
    }
}

impl TransmitBackend for FastBackend {
    fn n_aps(&self) -> usize {
        self.net.config().n_aps
    }

    fn n_clients(&self) -> usize {
        self.net.config().n_clients
    }

    fn advance(&mut self, dt: f64) {
        self.net.advance(dt);
        self.since_meas_s += dt;
    }

    fn transmit_batch(
        &mut self,
        dests: &[usize],
        payload_len: usize,
        active_aps: &[usize],
    ) -> Result<TxReport, JmbError> {
        if self.since_meas_s > self.remeasure_interval_s {
            self.net.run_measurement()?;
            self.since_meas_s = 0.0;
        }
        let out = self
            .net
            .joint_transmit_subset(dests, active_aps, payload_len, 2, true)?;
        let threshold = MCS_THRESHOLD_DB[out.mcs.index()];
        let acked = out
            .eff_snr_db
            .iter()
            .map(|&snr| self.rng.gen::<f64>() >= Self::per_from_margin(snr - threshold))
            .collect();
        Ok(TxReport {
            airtime_s: out.airtime_s,
            acked,
            mcs_index: out.mcs.index(),
        })
    }
}

/// Sample-level backend over [`JmbNetwork`]: every batch is a real OFDM
/// joint transmission and an ACK is a real CRC-checked decode. Orders of
/// magnitude slower — use for validation and fault-injection runs.
pub struct SampleBackend {
    net: JmbNetwork,
    mcs: Mcs,
}

impl SampleBackend {
    /// Builds the network and runs the measurement phase. The MCS comes
    /// from the network's own §9 rate selection (base rate if none
    /// clears).
    pub fn new(cfg: NetConfig) -> Result<Self, JmbError> {
        let mut net = JmbNetwork::new(cfg)?;
        net.run_measurement()?;
        let mcs = net.select_rate().unwrap_or(Mcs::BASE);
        Ok(SampleBackend { net, mcs })
    }

    /// Access to the wrapped network (fault injection, traces).
    pub fn net_mut(&mut self) -> &mut JmbNetwork {
        &mut self.net
    }

    /// The MCS used for every batch.
    pub fn mcs(&self) -> Mcs {
        self.mcs
    }
}

impl TransmitBackend for SampleBackend {
    fn n_aps(&self) -> usize {
        self.net.config().n_aps
    }

    fn n_clients(&self) -> usize {
        self.net.config().n_clients
    }

    fn advance(&mut self, dt: f64) {
        self.net.advance(dt);
    }

    fn transmit_batch(
        &mut self,
        dests: &[usize],
        payload_len: usize,
        active_aps: &[usize],
    ) -> Result<TxReport, JmbError> {
        let n_clients = self.net.config().n_clients;
        let n_aps = self.net.config().n_aps;
        // One payload per client (the network transmits one stream each);
        // clients outside the batch get a zero payload of the same length.
        let mut payloads = vec![vec![0u8; payload_len.max(1)]; n_clients];
        for (s, &d) in dests.iter().enumerate() {
            for (i, b) in payloads[d].iter_mut().enumerate() {
                *b = (i as u8).wrapping_mul(7).wrapping_add(s as u8);
            }
        }
        let mask: Vec<bool> = (0..n_aps).map(|i| active_aps.contains(&i)).collect();
        let results = self
            .net
            .joint_transmit_masked(&payloads, self.mcs, true, Some(&mask))?;
        let acked = dests.iter().map(|&d| results[d].is_ok()).collect();
        Ok(TxReport {
            airtime_s: baseline::frame_airtime(&self.net.config().params, self.mcs, payload_len),
            acked,
            mcs_index: self.mcs.index(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_model_shape() {
        assert!((FastBackend::per_from_margin(0.0) - 0.1).abs() < 1e-12);
        assert!(FastBackend::per_from_margin(5.0) < 1e-3);
        assert_eq!(FastBackend::per_from_margin(-10.0), 1.0);
        // Monotone decreasing.
        let mut prev = 1.0;
        for m in -5..15 {
            let p = FastBackend::per_from_margin(m as f64);
            assert!(p <= prev);
            prev = p;
        }
    }

    #[test]
    fn fast_backend_serves_batches() {
        let cfg = FastConfig::default_with(4, 4, vec![20.0; 4], 21);
        let mut b = FastBackend::new(cfg).unwrap();
        assert_eq!(b.n_aps(), 4);
        assert_eq!(b.n_clients(), 4);
        b.advance(1e-3);
        let r = b.transmit_batch(&[0, 2], 1500, &[0, 1, 2, 3]).unwrap();
        assert_eq!(r.acked.len(), 2);
        assert!(r.airtime_s > 0.0);
        // A degraded array still serves a smaller batch.
        let r = b.transmit_batch(&[1], 1500, &[1, 3]).unwrap();
        assert_eq!(r.acked.len(), 1);
    }

    #[test]
    fn fast_backend_deterministic() {
        let run = |seed| {
            let cfg = FastConfig::default_with(3, 3, vec![18.0; 3], seed);
            let mut b = FastBackend::new(cfg).unwrap();
            (0..10)
                .map(|_| {
                    b.advance(5e-4);
                    let r = b.transmit_batch(&[0, 1, 2], 700, &[0, 1, 2]).unwrap();
                    (r.acked, r.mcs_index)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }
}
