//! The PHY abstraction under the traffic event loop.
//!
//! The event loop only needs one thing from the physical layer: "serve this
//! joint batch from these live APs, tell me how long it took and who
//! ACKed". [`TransmitBackend`] captures exactly that, so the same traffic
//! simulation runs over the per-subcarrier [`FastNet`] (large sweeps) or
//! the sample-level [`JmbNetwork`] (full-PHY validation, fault injection
//! through the real CRC path).

use jmb_core::baseline;
use jmb_core::csi::{BackoffPolicy, CsiTracker};
use jmb_core::error::JmbError;
use jmb_core::fastnet::{FastConfig, FastNet};
use jmb_core::net::{JmbNetwork, NetConfig};
use jmb_core::sync::SyncStrategyId;
use jmb_dsp::rng::JmbRng;
use jmb_phy::esnr::MCS_THRESHOLD_DB;
use jmb_phy::rates::Mcs;
use rand::Rng;

/// Control-plane activity that happened while serving one batch: what the
/// traffic layer needs to charge overhead airtime and emit trace events /
/// metrics, without reaching into the PHY.
#[derive(Debug, Clone, Default)]
pub struct ControlInfo {
    /// Airtime consumed by control exchanges (measurement frames — lost or
    /// not, they occupy the channel), seconds. Charged on top of the data
    /// frame's airtime.
    pub overhead_s: f64,
    /// Slave APs that missed the lead's sync header for this batch.
    pub missed_slaves: Vec<usize>,
    /// Slaves newly marked degraded (K consecutive misses).
    pub newly_degraded: Vec<usize>,
    /// Degraded slaves restored to service by this batch.
    pub newly_restored: Vec<usize>,
    /// Measurement attempts made while serving this batch:
    /// `(attempt_number, succeeded)`.
    pub remeasurements: Vec<(u32, bool)>,
    /// When a measurement was lost: the backoff retry that was scheduled,
    /// `(next_attempt_number, earliest_time_s)`.
    pub retry: Option<(u32, f64)>,
    /// Age of the oldest CSI entry when the batch was served, seconds.
    pub csi_age_s: f64,
    /// Whether the CSI was past its staleness threshold at serve time.
    pub csi_stale: bool,
    /// Worst-case predicted phase error (radians) across slaves after the
    /// batch, as reported by the sync backend — the traffic layer exports
    /// it as the per-strategy phase-error gauge. Zero when the PHY has no
    /// pluggable sync (or before any reference exists).
    pub sync_phase_err_rad: f64,
}

/// Outcome of serving one joint batch.
#[derive(Debug, Clone)]
pub struct TxReport {
    /// Airtime the joint transmission consumed (data frame; the caller
    /// accounts header/turnaround separately if it wants), seconds.
    pub airtime_s: f64,
    /// Per-batch-packet acknowledgment (same order as `dests`).
    pub acked: Vec<bool>,
    /// Index into [`Mcs::ALL`] of the rate used.
    pub mcs_index: usize,
    /// Control-plane activity while serving the batch.
    pub control: ControlInfo,
}

/// A PHY capable of serving MAC batches.
pub trait TransmitBackend {
    /// Number of APs in the array.
    fn n_aps(&self) -> usize;
    /// Number of clients.
    fn n_clients(&self) -> usize;
    /// Advances the PHY clock by `dt` seconds (oscillators drift).
    fn advance(&mut self, dt: f64);
    /// Serves one joint batch: one stream per entry of `dests` (distinct
    /// clients), every payload padded to `payload_len` bytes, transmitted
    /// by the APs in `active_aps`.
    fn transmit_batch(
        &mut self,
        dests: &[usize],
        payload_len: usize,
        active_aps: &[usize],
    ) -> Result<TxReport, JmbError>;
    /// The synchronization backend keeping the array phase-aligned.
    /// Defaults to the paper's lead/slave strategy for PHYs without
    /// pluggable sync.
    fn sync_strategy(&self) -> SyncStrategyId {
        SyncStrategyId::default()
    }
    /// Swaps the synchronization backend. A no-op for PHYs without
    /// pluggable sync.
    fn set_sync_strategy(&mut self, _kind: SyncStrategyId) {}
}

/// Per-subcarrier backend over [`FastNet`]: SINR → packet success through
/// an EESM-margin error model. Fast enough for load sweeps.
pub struct FastBackend {
    net: FastNet,
    rng: JmbRng,
    /// CSI age / re-measurement scheduler. The precoder is computed from
    /// `h_meas`, so under fading it goes stale; JMB re-measures on demand
    /// (§5.1), and when the measurement frame itself is lost the tracker
    /// backs off exponentially before retrying (§7 robustness).
    tracker: CsiTracker,
    /// Backend-local clock, seconds of `advance` accumulated since `new`.
    clock_s: f64,
    /// Seconds the network's internal clock ran ahead of the airtime we
    /// reported (it models the sync header + turnaround itself, which the
    /// traffic layer charges separately as `header_overhead_s`). Absorbed
    /// out of subsequent `advance` calls so `net.now()` tracks sim time —
    /// fault-schedule windows and fading evolve in sim time.
    debt_s: f64,
}

impl FastBackend {
    /// Channel age after which the next batch triggers re-measurement,
    /// seconds. Default for [`FastBackend::new`].
    pub const DEFAULT_STALE_AFTER_S: f64 = 50e-3;

    /// Builds the network, runs the measurement phase, and derives the
    /// ACK-model RNG from the config seed.
    pub fn new(cfg: FastConfig) -> Result<Self, JmbError> {
        let rng = jmb_dsp::rng::derive_rng(cfg.seed, 0x7AFF);
        let n_aps = cfg.n_aps;
        let n_clients = cfg.n_clients;
        let mut net = FastNet::new(cfg)?;
        net.run_measurement()?;
        let mut tracker = CsiTracker::new(
            n_aps,
            n_clients,
            Self::DEFAULT_STALE_AFTER_S,
            BackoffPolicy::default(),
        )?;
        tracker.record_success(0.0);
        // The construction-time measurement already advanced the network
        // clock; the traffic simulation starts at t = 0. Book the offset as
        // debt so `net.now()` converges onto sim time.
        let debt_s = net.now();
        Ok(FastBackend {
            net,
            rng,
            tracker,
            clock_s: 0.0,
            debt_s,
        })
    }

    /// Access to the wrapped network (e.g. to evolve fading between runs,
    /// or to inject control-frame faults).
    pub fn net_mut(&mut self) -> &mut FastNet {
        &mut self.net
    }

    /// The CSI tracker driving re-measurement (age, backoff state).
    pub fn csi(&self) -> &CsiTracker {
        &self.tracker
    }

    /// Packet error rate from the EESM margin above the MCS threshold.
    ///
    /// Calibrated to the rate table's design point: ~10% PER right at
    /// threshold, an order of magnitude per ~2.3 dB of margin, saturating
    /// at 1 below threshold.
    pub fn per_from_margin(margin_db: f64) -> f64 {
        (0.1 * (-margin_db).exp()).min(1.0)
    }
}

impl TransmitBackend for FastBackend {
    fn n_aps(&self) -> usize {
        self.net.config().n_aps
    }

    fn n_clients(&self) -> usize {
        self.net.config().n_clients
    }

    fn advance(&mut self, dt: f64) {
        let forward = (dt - self.debt_s).max(0.0);
        self.debt_s = (self.debt_s - dt).max(0.0);
        self.net.advance(forward);
        self.clock_s += dt;
    }

    fn transmit_batch(
        &mut self,
        dests: &[usize],
        payload_len: usize,
        active_aps: &[usize],
    ) -> Result<TxReport, JmbError> {
        let net_t_before = self.net.now();
        let mut control = ControlInfo {
            csi_age_s: self.tracker.oldest_age(self.clock_s),
            csi_stale: self.tracker.is_stale(self.clock_s),
            ..ControlInfo::default()
        };
        if self.tracker.due(self.clock_s) {
            let attempt = self.tracker.failures() + 1;
            // A measurement frame occupies the channel whether or not the
            // control frames inside it survive.
            control.overhead_s += self.net.measurement_airtime_s();
            match self.net.run_measurement() {
                Ok(()) => {
                    self.tracker.record_success(self.clock_s);
                    control.remeasurements.push((attempt, true));
                }
                Err(JmbError::MeasurementLost) => {
                    let (att, next) = self.tracker.record_loss(self.clock_s);
                    control.remeasurements.push((att, false));
                    control.retry = Some((att + 1, next));
                }
                Err(e) => return Err(e),
            }
        }
        // Diff sync health around the transmission rather than copying the
        // outcome's event lists: when the batch fails outright (too few
        // sync'd slaves → `SyncHeaderMissed`) there is no outcome, but the
        // misses and degradations still happened and must be reported.
        let before: Vec<(bool, u64)> = self
            .net
            .sync_health()
            .iter()
            .map(|h| (h.is_degraded(), h.total_misses()))
            .collect();
        let result = self
            .net
            .joint_transmit_subset(dests, active_aps, payload_len, 2, true);
        for (i, h) in self.net.sync_health().iter().enumerate() {
            let slave = i + 1; // health is indexed by slave − 1 (AP 0 leads)
            let (was_degraded, misses) = before[i];
            if h.total_misses() > misses {
                control.missed_slaves.push(slave);
            }
            if !was_degraded && h.is_degraded() {
                control.newly_degraded.push(slave);
            }
            if was_degraded && !h.is_degraded() {
                control.newly_restored.push(slave);
            }
        }
        // Out-of-band sync control airtime (pilot broadcasts) accrued while
        // serving this batch is charged as control overhead — zero for the
        // in-band JMB strategy, which keeps its accounting byte-exact.
        control.overhead_s += self.net.take_sync_control_airtime_s();
        let phase_err = self.net.sync_phase_error_rad();
        if phase_err.is_finite() {
            control.sync_phase_err_rad = phase_err;
        }
        let out = match result {
            Ok(out) => out,
            Err(JmbError::SyncHeaderMissed { .. }) => {
                // Not enough sync'd slaves for this batch width: the joint
                // transmission never launched. Nobody ACKs, the MAC retry
                // path takes over, and the control events above still
                // reach the traffic layer.
                self.clock_s += control.overhead_s;
                self.debt_s += self.net.now() - net_t_before - control.overhead_s;
                return Ok(TxReport {
                    airtime_s: 0.0,
                    acked: vec![false; dests.len()],
                    mcs_index: 0,
                    control,
                });
            }
            Err(e) => return Err(e),
        };
        let threshold = MCS_THRESHOLD_DB[out.mcs.index()];
        let acked = out
            .eff_snr_db
            .iter()
            .map(|&snr| self.rng.gen::<f64>() >= Self::per_from_margin(snr - threshold))
            .collect();
        // The network advances its own oscillators through the frame and
        // the measurement exchange; mirror that here so CSI ages in sim
        // time (the caller's `advance` only covers idle/contention gaps).
        let charged = out.airtime_s + control.overhead_s;
        self.clock_s += charged;
        // Whatever the network clock ran past the airtime we charged (its
        // own header/turnaround/SIFS model) becomes debt, absorbed out of
        // the caller's future idle-time `advance` calls.
        self.debt_s += self.net.now() - net_t_before - charged;
        Ok(TxReport {
            airtime_s: out.airtime_s,
            acked,
            mcs_index: out.mcs.index(),
            control,
        })
    }

    fn sync_strategy(&self) -> SyncStrategyId {
        self.net.sync_strategy()
    }

    fn set_sync_strategy(&mut self, kind: SyncStrategyId) {
        self.net.set_sync_strategy(kind);
    }
}

/// Sample-level backend over [`JmbNetwork`]: every batch is a real OFDM
/// joint transmission and an ACK is a real CRC-checked decode. Orders of
/// magnitude slower — use for validation and fault-injection runs.
pub struct SampleBackend {
    net: JmbNetwork,
    mcs: Mcs,
}

impl SampleBackend {
    /// Builds the network and runs the measurement phase. The MCS comes
    /// from the network's own §9 rate selection (base rate if none
    /// clears).
    pub fn new(cfg: NetConfig) -> Result<Self, JmbError> {
        let mut net = JmbNetwork::new(cfg)?;
        net.run_measurement()?;
        let mcs = net.select_rate().unwrap_or(Mcs::BASE);
        Ok(SampleBackend { net, mcs })
    }

    /// Access to the wrapped network (fault injection, traces).
    pub fn net_mut(&mut self) -> &mut JmbNetwork {
        &mut self.net
    }

    /// The MCS used for every batch.
    pub fn mcs(&self) -> Mcs {
        self.mcs
    }
}

impl TransmitBackend for SampleBackend {
    fn n_aps(&self) -> usize {
        self.net.config().n_aps
    }

    fn n_clients(&self) -> usize {
        self.net.config().n_clients
    }

    fn advance(&mut self, dt: f64) {
        self.net.advance(dt);
    }

    fn transmit_batch(
        &mut self,
        dests: &[usize],
        payload_len: usize,
        active_aps: &[usize],
    ) -> Result<TxReport, JmbError> {
        let n_clients = self.net.config().n_clients;
        let n_aps = self.net.config().n_aps;
        // One payload per client (the network transmits one stream each);
        // clients outside the batch get a zero payload of the same length.
        let mut payloads = vec![vec![0u8; payload_len.max(1)]; n_clients];
        for (s, &d) in dests.iter().enumerate() {
            for (i, b) in payloads[d].iter_mut().enumerate() {
                *b = (i as u8).wrapping_mul(7).wrapping_add(s as u8);
            }
        }
        let mask: Vec<bool> = (0..n_aps).map(|i| active_aps.contains(&i)).collect();
        let results = self
            .net
            .joint_transmit_masked(&payloads, self.mcs, true, Some(&mask))?;
        let acked = dests.iter().map(|&d| results[d].is_ok()).collect();
        Ok(TxReport {
            airtime_s: baseline::frame_airtime(&self.net.config().params, self.mcs, payload_len),
            acked,
            mcs_index: self.mcs.index(),
            control: ControlInfo::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_model_shape() {
        assert!((FastBackend::per_from_margin(0.0) - 0.1).abs() < 1e-12);
        assert!(FastBackend::per_from_margin(5.0) < 1e-3);
        assert_eq!(FastBackend::per_from_margin(-10.0), 1.0);
        // Monotone decreasing.
        let mut prev = 1.0;
        for m in -5..15 {
            let p = FastBackend::per_from_margin(m as f64);
            assert!(p <= prev);
            prev = p;
        }
    }

    #[test]
    fn fast_backend_serves_batches() {
        let cfg = FastConfig::default_with(4, 4, vec![20.0; 4], 21);
        let mut b = FastBackend::new(cfg).unwrap();
        assert_eq!(b.n_aps(), 4);
        assert_eq!(b.n_clients(), 4);
        b.advance(1e-3);
        let r = b.transmit_batch(&[0, 2], 1500, &[0, 1, 2, 3]).unwrap();
        assert_eq!(r.acked.len(), 2);
        assert!(r.airtime_s > 0.0);
        // A degraded array still serves a smaller batch.
        let r = b.transmit_batch(&[1], 1500, &[1, 3]).unwrap();
        assert_eq!(r.acked.len(), 1);
    }

    #[test]
    fn fast_backend_deterministic() {
        let run = |seed| {
            let cfg = FastConfig::default_with(3, 3, vec![18.0; 3], seed);
            let mut b = FastBackend::new(cfg).unwrap();
            (0..10)
                .map(|_| {
                    b.advance(5e-4);
                    let r = b.transmit_batch(&[0, 1, 2], 700, &[0, 1, 2]).unwrap();
                    (r.acked, r.mcs_index)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }
}
