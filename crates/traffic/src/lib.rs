//! Discrete-event traffic subsystem for JMB networks.
//!
//! Everything upstream of the PHY: per-client offered load
//! ([`ArrivalProcess`], [`PacketSizeDist`]), the shared downlink queue and
//! §9 link layer driven as a seeded event loop ([`TrafficSim`]), AP
//! failure/recovery schedules ([`ApOutage`]), and the resulting
//! goodput/latency/fairness record ([`TrafficMetrics`]).
//!
//! The PHY plugs in through [`TransmitBackend`]: [`FastBackend`] for
//! per-subcarrier sweeps, [`SampleBackend`] for full sample-level
//! validation (real OFDM frames, real CRCs, fault injection).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod backend;
pub mod metrics;
pub mod sim;

pub use arrival::{ArrivalGen, ArrivalProcess, PacketSizeDist};
pub use backend::{ControlInfo, FastBackend, SampleBackend, TransmitBackend, TxReport};
pub use metrics::{TimelineBin, TrafficMetrics};
pub use sim::{ApOutage, BoundedRun, ClientLoad, RunLimits, TrafficConfig, TrafficSim};
