//! The discrete-event traffic simulation.
//!
//! A seeded, single-threaded event loop: per-client arrival processes feed
//! the shared [`JmbMac`] queue; whenever the medium is idle the §9 schedule
//! runs — lead election from the head-of-queue packet, joint-batch
//! selection of distinct destinations, a weighted contention window, one
//! joint transmission through a [`TransmitBackend`], and asynchronous
//! ACK/retransmission bookkeeping. Scheduled AP outages exercise failover:
//! the designated-AP map is re-elected onto surviving APs and the stream
//! cap shrinks so zero-forcing stays well-posed.
//!
//! # Determinism
//!
//! Same seed + same config ⇒ identical metrics, bit for bit. Every random
//! draw comes from a stream-derived RNG (arrivals per client, backoff, the
//! backend's own ACK model), events at equal times are ordered by a
//! monotone sequence number, and the loop itself is single-threaded —
//! parallelism belongs *outside*, across simulations (see
//! `jmb_core::experiment::parallel_map`).

use crate::arrival::{ArrivalGen, ArrivalProcess, PacketSizeDist};
use crate::backend::TransmitBackend;
use crate::metrics::{TimelineBin, TrafficMetrics};
use jmb_core::error::JmbError;
use jmb_core::mac::{JmbMac, MacConfig, MacPacket, PacketFate};
use jmb_core::sync::SyncStrategyId;
use jmb_dsp::rng::JmbRng;
use jmb_obs::Registry;
use jmb_sim::{DropCause, EventKind as TraceKind, StopCause, Trace};
use rand::Rng;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// One client's offered load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientLoad {
    /// Arrival process.
    pub arrival: ArrivalProcess,
    /// Packet-size distribution.
    pub size: PacketSizeDist,
}

impl ClientLoad {
    /// Poisson arrivals of fixed-size packets.
    pub fn poisson(rate_pps: f64, bytes: usize) -> Self {
        ClientLoad {
            arrival: ArrivalProcess::Poisson { rate_pps },
            size: PacketSizeDist::Fixed(bytes),
        }
    }

    /// Mean offered load, bits/second.
    pub fn offered_bps(&self) -> f64 {
        self.arrival.mean_rate_pps() * self.size.mean() * 8.0
    }
}

/// A scheduled AP failure window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApOutage {
    /// Which AP fails.
    pub ap: usize,
    /// Failure time, seconds.
    pub down_at_s: f64,
    /// Recovery time, seconds (`f64::INFINITY` = never recovers).
    pub up_at_s: f64,
}

/// Traffic-simulation configuration.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Absolute start time of the run, seconds (default 0). Arrivals are
    /// generated in `[start_s, start_s + duration_s)`; outage times stay
    /// absolute. A multi-cell deployment aligns every cell's event loop on
    /// a shared city clock by giving each epoch the same `start_s`.
    pub start_s: f64,
    /// Load-generation horizon, seconds.
    pub duration_s: f64,
    /// Extra time after the horizon to drain the queue, seconds.
    pub drain_timeout_s: f64,
    /// Link-layer configuration.
    pub mac: MacConfig,
    /// One load per client.
    pub loads: Vec<ClientLoad>,
    /// Scheduled AP failures.
    pub outages: Vec<ApOutage>,
    /// Contention slot duration, seconds (802.11 OFDM: 9 µs).
    pub slot_s: f64,
    /// Fixed per-transmission overhead: lead sync header + software
    /// turnaround (§5.2), seconds.
    pub header_overhead_s: f64,
    /// Timeline bin width, seconds.
    pub timeline_bin_s: f64,
    /// Master seed (arrivals and backoff; the backend seeds itself).
    pub seed: u64,
    /// Synchronization backend for the run. Applied to the PHY at
    /// construction when it differs from the backend's current strategy;
    /// a non-default choice is announced on the trace at run start with
    /// [`TraceKind::SyncStrategySwitched`].
    pub sync_strategy: SyncStrategyId,
}

impl TrafficConfig {
    /// Defaults: 9 µs slots, 216 µs fixed overhead (16 µs sync header +
    /// 150 µs turnaround + 50 µs post-frame SIFS, matching the fast PHY's
    /// internal timing model so its clock tracks sim time), 50 ms bins,
    /// 1 s horizon with 0.5 s drain.
    pub fn default_with(loads: Vec<ClientLoad>, seed: u64) -> Self {
        TrafficConfig {
            start_s: 0.0,
            duration_s: 1.0,
            drain_timeout_s: 0.5,
            mac: MacConfig::default(),
            loads,
            outages: Vec::new(),
            slot_s: 9e-6,
            header_overhead_s: 216e-6,
            timeline_bin_s: 50e-3,
            seed,
            sync_strategy: SyncStrategyId::default(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    Arrival { client: usize },
    TxDone,
    ApDown { ap: usize },
    ApUp { ap: usize },
}

#[derive(Debug, Clone, Copy)]
struct Event {
    t: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Total order on (time, insertion sequence): simultaneous events
        // process in creation order — the determinism tie-break.
        self.t.total_cmp(&other.t).then(self.seq.cmp(&other.seq))
    }
}

/// Resource limits for a bounded run ([`TrafficSim::run_bounded`]).
///
/// Each limit is checked *before* an event is processed, so a run never
/// does partial work past its budget; the drain deadline (`duration_s +
/// drain_timeout_s`) still applies on top of these. [`RunLimits::none`]
/// makes `run_bounded` behave exactly like [`TrafficSim::run`].
pub struct RunLimits {
    /// Stop after this many processed events ([`StopCause::MaxEvents`]).
    pub max_events: Option<u64>,
    /// Stop before processing any event later than `start_s +
    /// max_sim_time_s` ([`StopCause::MaxSimTime`]). An event at exactly
    /// the deadline still processes (the same half-open convention as
    /// fault windows, seen from the other side).
    pub max_sim_time_s: Option<f64>,
    /// External stop predicate, called with `(events_processed, sim_time)`
    /// every [`RunLimits::stop_poll_events`] events; returning `true`
    /// stops the run with [`StopCause::Wallclock`]. This is the scenario
    /// runner's wall-clock deadline hook — the predicate owns the clock so
    /// the simulation itself stays free of wall-time reads.
    pub stop: Option<Box<dyn FnMut(u64, f64) -> bool>>,
    /// Poll period for [`RunLimits::stop`], in events (0 is treated as 1).
    pub stop_poll_events: u64,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            max_events: None,
            max_sim_time_s: None,
            stop: None,
            stop_poll_events: 1024,
        }
    }
}

impl RunLimits {
    /// No limits: `run_bounded` completes naturally, like `run`.
    pub fn none() -> Self {
        Self::default()
    }
}

impl std::fmt::Debug for RunLimits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunLimits")
            .field("max_events", &self.max_events)
            .field("max_sim_time_s", &self.max_sim_time_s)
            .field("stop", &self.stop.as_ref().map(|_| "<fn>"))
            .field("stop_poll_events", &self.stop_poll_events)
            .finish()
    }
}

/// Outcome of [`TrafficSim::run_bounded`]: the metrics plus why and when
/// the loop stopped.
#[derive(Debug)]
pub struct BoundedRun {
    /// The usual run metrics. On an early stop, `elapsed_s` is the sim
    /// time actually covered (not padded up to `duration_s`).
    pub metrics: TrafficMetrics,
    /// Why the loop stopped.
    pub cause: StopCause,
    /// Events processed before stopping.
    pub events: u64,
}

/// Delivery-latency histogram buckets (upper bounds, seconds): 1 ms to
/// 1 s in a 1-2-5 sequence — queueing latencies under load span exactly
/// this range in the sweeps.
const LATENCY_BUCKETS_S: &[f64] = &[1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 2e-1, 5e-1, 1.0];

struct InFlight {
    batch: Vec<MacPacket>,
    acked: Vec<bool>,
    airtime_s: f64,
}

/// The traffic simulator. Build once, [`TrafficSim::run`] once.
pub struct TrafficSim<B: TransmitBackend> {
    cfg: TrafficConfig,
    backend: B,
    mac: JmbMac,
    /// Home (initial designated) AP per client, restored on recovery.
    home_ap: Vec<usize>,
    active: Vec<bool>,
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    arrivals: Vec<ArrivalGen>,
    backoff_rng: JmbRng,
    /// Enqueue time + true (unpadded) size per in-queue packet id.
    ///
    /// `BTreeMap` by the determinism contract (DESIGN.md §3.15): access is
    /// keyed-only today, but an ordered map keeps any future iteration
    /// (queue inspection, draining on teardown) deterministic by
    /// construction instead of by audit.
    meta: BTreeMap<u64, (f64, usize)>,
    in_flight: Option<InFlight>,
    /// Sim time up to which the backend clock has been advanced.
    phy_t: f64,
    /// Protocol/traffic event trace (enable before `run`).
    pub trace: Trace,
    /// Run-level metrics registry: every counter [`TrafficMetrics`]
    /// reports is accumulated here during the event loop and read out at
    /// the end of [`TrafficSim::run`].
    reg: Registry,
}

impl<B: TransmitBackend> TrafficSim<B> {
    /// Validates the config against the backend and seeds all generators.
    ///
    /// The initial designated-AP map assigns client `j` to AP `j mod n_aps`
    /// (matching the backend topologies, where strongest APs are spread
    /// across clients).
    pub fn new(cfg: TrafficConfig, mut backend: B) -> Result<Self, JmbError> {
        if cfg.loads.len() != backend.n_clients() {
            return Err(JmbError::BadConfig("one load per client required"));
        }
        if cfg.loads.is_empty() {
            return Err(JmbError::BadConfig("need at least one client"));
        }
        if cfg
            .outages
            .iter()
            .any(|o| o.ap >= backend.n_aps() || o.up_at_s <= o.down_at_s)
        {
            return Err(JmbError::BadConfig("bad outage schedule"));
        }
        if cfg.duration_s <= 0.0 || cfg.timeline_bin_s <= 0.0 || cfg.slot_s <= 0.0 {
            return Err(JmbError::BadConfig("durations must be positive"));
        }
        if !cfg.start_s.is_finite() || cfg.start_s < 0.0 {
            return Err(JmbError::BadConfig(
                "start time must be finite and non-negative",
            ));
        }
        // Apply the run's sync strategy only when it differs: a backend
        // whose PHY was already built on the requested strategy keeps its
        // measurement-phase seeding (and, for the default strategy, its
        // byte-exact draw stream).
        if backend.sync_strategy() != cfg.sync_strategy {
            backend.set_sync_strategy(cfg.sync_strategy);
        }
        let n_aps = backend.n_aps();
        let home_ap: Vec<usize> = (0..backend.n_clients()).map(|j| j % n_aps).collect();
        let mut mac = JmbMac::new(cfg.mac, home_ap.clone());
        mac.set_max_streams(cfg.mac.max_streams.min(n_aps));
        let arrivals: Vec<ArrivalGen> = cfg
            .loads
            .iter()
            .enumerate()
            .map(|(c, l)| {
                ArrivalGen::new(
                    l.arrival,
                    l.size,
                    jmb_dsp::rng::derive_rng(cfg.seed, 0xA0_0000 + c as u64),
                    cfg.start_s,
                )
            })
            .collect();
        let backoff_rng = jmb_dsp::rng::derive_rng(cfg.seed, 0xB0_FF00);
        let mut reg = Registry::new();
        reg.register_hist("traffic_latency_s", LATENCY_BUCKETS_S);
        Ok(TrafficSim {
            active: vec![true; n_aps],
            home_ap,
            mac,
            heap: BinaryHeap::new(),
            seq: 0,
            arrivals,
            backoff_rng,
            meta: BTreeMap::new(),
            in_flight: None,
            phy_t: cfg.start_s,
            trace: Trace::new(),
            reg,
            cfg,
            backend,
        })
    }

    /// Access to the PHY backend (fault injection, trace inspection).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// The run-level metrics registry (counters, airtime gauges, and the
    /// delivery-latency histogram).
    pub fn registry(&self) -> &Registry {
        &self.reg
    }

    fn push_event(&mut self, t: f64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Event { t, seq, kind }));
    }

    fn active_aps(&self) -> Vec<usize> {
        (0..self.active.len()).filter(|&i| self.active[i]).collect()
    }

    /// Re-elects designated APs and shrinks/grows the stream cap after a
    /// liveness change (§9's per-packet lead re-election is what makes this
    /// safe: the next head-of-queue packet simply nominates a live AP).
    fn apply_liveness(&mut self) {
        let live = self.active_aps();
        if live.is_empty() {
            return; // transmissions pause until an AP recovers
        }
        for c in 0..self.home_ap.len() {
            let home = self.home_ap[c];
            let want = if self.active[home] { home } else { live[0] };
            if self.mac.designated_ap(c) != want {
                self.mac.set_designated_ap(c, want);
            }
        }
        self.mac
            .set_max_streams(self.cfg.mac.max_streams.min(live.len()));
    }

    /// Translates the backend's control-plane report into trace events and
    /// metrics counters, at sim time `now`.
    fn record_control(&mut self, c: &crate::backend::ControlInfo, now: f64) {
        if c.csi_stale {
            self.reg.inc("traffic_csi_stale");
            self.trace
                .emit(now, TraceKind::CsiStale { age_s: c.csi_age_s });
        }
        for &(attempt, ok) in &c.remeasurements {
            if ok {
                self.reg.inc("traffic_remeasure_ok");
                self.trace.emit(now, TraceKind::RemeasureOk { attempt });
            } else {
                self.reg.inc("traffic_remeasure_failed");
                self.trace.emit(now, TraceKind::RemeasureFailed { attempt });
            }
        }
        if let Some((attempt, at)) = c.retry {
            self.reg.inc("traffic_remeasure_scheduled");
            self.trace
                .emit(now, TraceKind::RemeasureScheduled { at, attempt });
        }
        for &slave in &c.missed_slaves {
            self.reg.inc("traffic_sync_misses");
            self.trace.emit(now, TraceKind::SyncMissed { slave });
        }
        for &ap in &c.newly_degraded {
            self.reg.inc("traffic_aps_degraded");
            self.trace.emit(now, TraceKind::ApDegraded { ap });
        }
        for &ap in &c.newly_restored {
            self.reg.inc("traffic_aps_restored");
            self.trace.emit(now, TraceKind::ApRestored { ap });
        }
        self.reg
            .gauge_add("traffic_control_airtime_s", c.overhead_s);
        if c.sync_phase_err_rad > 0.0 {
            self.reg
                .gauge_set("traffic_sync_phase_err_rad", c.sync_phase_err_rad);
        }
    }

    /// Starts a joint transmission if the medium is idle and work exists.
    fn maybe_start_tx(&mut self, now: f64) {
        if self.in_flight.is_some() || self.mac.queue_len() == 0 {
            return;
        }
        let live = self.active_aps();
        if live.is_empty() {
            return;
        }
        if let Some(lead) = self.mac.next_lead() {
            self.trace.emit(now, TraceKind::LeadElected { ap: lead });
        }
        let mut batch = self.mac.select_batch();
        if batch.is_empty() {
            // Every queued destination is blacklisted: §9 re-admits after
            // re-measurement; model that as a reset so the queue never
            // starves.
            self.mac.clear_all_blacklists();
            batch = self.mac.select_batch();
        }
        if batch.is_empty() {
            return;
        }
        self.trace.emit(
            now,
            TraceKind::BatchSelected {
                n_packets: batch.len(),
            },
        );
        let cw = self.mac.contention_window(batch.len());
        let backoff_s = self.backoff_rng.gen_range(0..cw) as f64 * self.cfg.slot_s;
        let t_start = now + backoff_s + self.cfg.header_overhead_s;
        // Keep the PHY clock tracking sim time (oscillators drift through
        // idle and contention periods too).
        let dt = (t_start - self.phy_t).max(0.0);
        self.backend.advance(dt);
        let dests: Vec<usize> = batch.iter().map(|p| p.dest).collect();
        let payload_len = batch[0].payload.len();
        let report = self
            .backend
            .transmit_batch(&dests, payload_len, &live)
            .unwrap_or_else(|_| crate::backend::TxReport {
                // A PHY refusal (e.g. transiently more streams than live
                // APs, or too few sync'd slaves) behaves like a lost
                // transmission: nobody ACKs and the MAC retry path takes
                // over — the protocol degrades, it never stalls.
                airtime_s: self.cfg.header_overhead_s,
                acked: vec![false; batch.len()],
                mcs_index: 0,
                control: Default::default(),
            });
        self.record_control(&report.control, now);
        let airtime_s =
            self.cfg.header_overhead_s + backoff_s + report.airtime_s + report.control.overhead_s;
        let t_done = now + airtime_s;
        self.phy_t = t_start + report.airtime_s + report.control.overhead_s;
        self.in_flight = Some(InFlight {
            batch,
            acked: report.acked,
            airtime_s,
        });
        self.push_event(t_done, EventKind::TxDone);
    }

    /// Runs the simulation to completion and returns the metrics.
    pub fn run(&mut self) -> TrafficMetrics {
        self.run_bounded(RunLimits::none()).metrics
    }

    /// Runs the simulation under resource limits.
    ///
    /// With [`RunLimits::none`] this is exactly [`TrafficSim::run`] — same
    /// events, same RNG draws, byte-identical metrics. Each limit is
    /// checked before processing an event (sim-time deadline first, then
    /// the event budget, then the polled stop predicate), so a stopped run
    /// leaves the trace and registry consistent: every emitted event was
    /// fully processed.
    pub fn run_bounded(&mut self, mut limits: RunLimits) -> BoundedRun {
        let _span = jmb_obs::span("traffic_event_loop");
        // Announce a non-default sync backend on the trace: the trace is
        // usually enabled after `new`, so the construction-time switch
        // would otherwise be invisible to headless assertion checks.
        if self.cfg.sync_strategy != SyncStrategyId::default() {
            self.trace.emit(
                self.cfg.start_s,
                TraceKind::SyncStrategySwitched {
                    strategy: self.cfg.sync_strategy,
                },
            );
        }
        let n_clients = self.cfg.loads.len();
        let mut m = TrafficMetrics {
            duration_s: self.cfg.duration_s,
            offered_bps: self.cfg.loads.iter().map(|l| l.offered_bps()).sum(),
            ..Default::default()
        };
        let t_end = self.cfg.start_s + self.cfg.duration_s;
        let hard_end = t_end + self.cfg.drain_timeout_s;

        // Seed the event heap: first arrival per client + the outage
        // schedule. `pending` holds the staged (time, size) for each
        // client's next arrival so the event handler doesn't re-draw.
        let mut pending: Vec<Option<(f64, usize)>> = Vec::with_capacity(n_clients);
        for gen in self.arrivals.iter_mut() {
            let (t, size) = gen.next_arrival();
            pending.push((t < t_end).then_some((t, size)));
        }
        for (c, slot) in pending.iter().enumerate() {
            if let Some((t, _)) = *slot {
                self.push_event(t, EventKind::Arrival { client: c });
            }
        }
        for o in self.cfg.outages.clone() {
            self.push_event(o.down_at_s, EventKind::ApDown { ap: o.ap });
            if o.up_at_s.is_finite() {
                self.push_event(o.up_at_s, EventKind::ApUp { ap: o.ap });
            }
        }

        let sim_deadline = limits.max_sim_time_s.map(|d| self.cfg.start_s + d);
        let poll = limits.stop_poll_events.max(1);
        let mut processed: u64 = 0;
        let mut cause = StopCause::Completed;
        let mut now = self.cfg.start_s;
        while let Some(Reverse(ev)) = self.heap.pop() {
            if ev.t > hard_end {
                break;
            }
            if sim_deadline.is_some_and(|d| ev.t > d) {
                cause = StopCause::MaxSimTime;
                break;
            }
            if limits.max_events.is_some_and(|max| processed >= max) {
                cause = StopCause::MaxEvents;
                break;
            }
            if processed.is_multiple_of(poll) {
                if let Some(stop) = limits.stop.as_mut() {
                    if stop(processed, ev.t) {
                        cause = StopCause::Wallclock;
                        break;
                    }
                }
            }
            processed += 1;
            now = ev.t;
            match ev.kind {
                EventKind::Arrival { client } => {
                    // jmb-allow(no-panic-hot-path): event-loop invariant — an Arrival is only scheduled after pending[client] is staged
                    let (_, size) = pending[client].take().expect("staged arrival");
                    let id = self.mac.enqueue(client, vec![0u8; size]);
                    self.meta.insert(id, (now, size));
                    self.reg.inc("traffic_generated");
                    self.trace.emit(now, TraceKind::Enqueued { client, id });
                    let (t_next, s_next) = self.arrivals[client].next_arrival();
                    if t_next < t_end {
                        pending[client] = Some((t_next, s_next));
                        self.push_event(t_next, EventKind::Arrival { client });
                    }
                }
                EventKind::ApDown { ap } => {
                    self.active[ap] = false;
                    self.trace.emit(now, TraceKind::ApDown { ap });
                    self.apply_liveness();
                }
                EventKind::ApUp { ap } => {
                    self.active[ap] = true;
                    self.trace.emit(now, TraceKind::ApUp { ap });
                    self.apply_liveness();
                }
                EventKind::TxDone => {
                    // jmb-allow(no-panic-hot-path): event-loop invariant — exactly one TxDone is scheduled per in-flight transmission
                    let inf = self.in_flight.take().expect("tx completion without tx");
                    self.reg.inc("traffic_transmissions");
                    self.reg.gauge_add("traffic_airtime_s", inf.airtime_s);
                    let fates = self
                        .mac
                        .complete_batch(inf.batch, &inf.acked, inf.airtime_s);
                    for fate in fates {
                        match fate {
                            PacketFate::Acked { dest, id } => {
                                let (t_in, size) =
                                    // jmb-allow(no-panic-hot-path): event-loop invariant — meta gains an entry at enqueue for every id the MAC can ack
                                    self.meta.remove(&id).expect("acked unknown packet");
                                self.reg.inc("traffic_delivered");
                                self.reg.observe("traffic_latency_s", now - t_in);
                                m.latencies_s.push(now - t_in);
                                let bits = 8.0 * size as f64;
                                self.reg
                                    .gauge_add_at("traffic_client_bits", dest as u32, bits);
                                record_timeline(
                                    &mut m.timeline,
                                    self.cfg.timeline_bin_s,
                                    now - self.cfg.start_s,
                                    bits,
                                    self.mac.queue_len(),
                                );
                                self.trace.emit(now, TraceKind::Acked { client: dest, id });
                            }
                            PacketFate::Requeued { dest, id, attempts } => {
                                self.reg.inc("traffic_retries");
                                self.trace.emit(
                                    now,
                                    TraceKind::Retry {
                                        client: dest,
                                        id,
                                        attempt: attempts,
                                    },
                                );
                            }
                            PacketFate::Dropped { dest, id } => {
                                self.meta.remove(&id);
                                self.reg.inc("traffic_dropped");
                                self.trace.emit(
                                    now,
                                    TraceKind::Dropped {
                                        node: dest,
                                        cause: DropCause::RetryLimit,
                                    },
                                );
                            }
                        }
                    }
                }
            }
            self.maybe_start_tx(now);
        }

        m.queued_at_end = self.mac.queue_len() as u64
            + self.in_flight.as_ref().map_or(0, |i| i.batch.len()) as u64;
        m.elapsed_s = if cause == StopCause::Completed {
            (now - self.cfg.start_s).max(self.cfg.duration_s)
        } else {
            // Early stop: report only the sim time actually covered, so
            // goodput (bits / elapsed) reflects the truncated run.
            now - self.cfg.start_s
        };
        m.fill_from_registry(&self.reg, n_clients);
        BoundedRun {
            metrics: m,
            cause,
            events: processed,
        }
    }
}

fn record_timeline(
    timeline: &mut Vec<TimelineBin>,
    bin_s: f64,
    t: f64,
    bits: f64,
    queue_len: usize,
) {
    let idx = (t / bin_s) as usize;
    while timeline.len() <= idx {
        let k = timeline.len();
        timeline.push(TimelineBin {
            t_s: k as f64 * bin_s,
            delivered_bits: 0.0,
            queue_len: 0,
        });
    }
    timeline[idx].delivered_bits += bits;
    timeline[idx].queue_len = queue_len;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::TxReport;

    /// A deterministic stub PHY: fixed airtime, ACK everything unless the
    /// destination is in `failing`, which NACKs until `fail_until_tx`.
    struct StubBackend {
        n_aps: usize,
        n_clients: usize,
        airtime_s: f64,
        failing: Vec<usize>,
        calls: u64,
        fail_until_call: u64,
    }

    impl StubBackend {
        fn perfect(n_aps: usize, n_clients: usize) -> Self {
            StubBackend {
                n_aps,
                n_clients,
                airtime_s: 500e-6,
                failing: Vec::new(),
                calls: 0,
                fail_until_call: 0,
            }
        }
    }

    impl TransmitBackend for StubBackend {
        fn n_aps(&self) -> usize {
            self.n_aps
        }
        fn n_clients(&self) -> usize {
            self.n_clients
        }
        fn advance(&mut self, _dt: f64) {}
        fn transmit_batch(
            &mut self,
            dests: &[usize],
            _payload_len: usize,
            active_aps: &[usize],
        ) -> Result<TxReport, JmbError> {
            assert!(!active_aps.is_empty());
            assert!(dests.len() <= active_aps.len().max(1));
            self.calls += 1;
            let acked = dests
                .iter()
                .map(|d| !(self.failing.contains(d) && self.calls <= self.fail_until_call))
                .collect();
            Ok(TxReport {
                airtime_s: self.airtime_s,
                acked,
                mcs_index: 0,
                control: Default::default(),
            })
        }
    }

    fn light_cfg(n_clients: usize, seed: u64) -> TrafficConfig {
        TrafficConfig::default_with(vec![ClientLoad::poisson(50.0, 700); n_clients], seed)
    }

    #[test]
    fn light_load_delivers_everything() {
        let cfg = light_cfg(3, 1);
        let mut sim = TrafficSim::new(cfg, StubBackend::perfect(4, 3)).unwrap();
        let m = sim.run();
        assert!(m.generated > 50, "generated {}", m.generated);
        assert_eq!(m.delivered, m.generated);
        assert_eq!(m.dropped, 0);
        assert_eq!(m.queued_at_end, 0);
        assert!(m.delivery_ratio() == 1.0);
        assert!(m.median_latency_s() < 5e-3, "{}", m.median_latency_s());
        assert!(m.jain_fairness() > 0.8);
    }

    #[test]
    fn overload_queues_and_latency_grows() {
        // Each 700-byte packet takes ≥ 682 µs of airtime+header: capacity
        // ≈ 1.4k packets/s aggregate (batched ×3), so 3 × 3000 pps swamps it.
        let mut cfg = light_cfg(3, 2);
        for l in cfg.loads.iter_mut() {
            *l = ClientLoad::poisson(3000.0, 700);
        }
        cfg.duration_s = 0.5;
        cfg.drain_timeout_s = 0.1;
        let light = TrafficSim::new(light_cfg(3, 2), StubBackend::perfect(4, 3))
            .unwrap()
            .run();
        let heavy = TrafficSim::new(cfg, StubBackend::perfect(4, 3))
            .unwrap()
            .run();
        assert!(heavy.queued_at_end > 0, "overload must leave a backlog");
        assert!(
            heavy.p99_latency_s() > 10.0 * light.p99_latency_s(),
            "light p99 {} vs heavy p99 {}",
            light.p99_latency_s(),
            heavy.p99_latency_s()
        );
    }

    #[test]
    fn retries_and_drops_recorded() {
        let mut cfg = light_cfg(2, 3);
        cfg.mac.retry_limit = 3;
        let mut backend = StubBackend::perfect(2, 2);
        backend.failing = vec![1];
        backend.fail_until_call = u64::MAX; // client 1 never ACKs
        let mut sim = TrafficSim::new(cfg, backend).unwrap();
        sim.trace.enable();
        let m = sim.run();
        assert!(m.retries > 0);
        assert!(m.dropped > 0);
        assert!(sim.trace.retry_count() > 0);
        assert!(sim.trace.drop_count_by(DropCause::RetryLimit) > 0);
        // Client 0 still drains fine (decoupled losses).
        assert!(m.per_client_bits[0] > 0.0);
        assert_eq!(m.per_client_bits[1], 0.0);
    }

    #[test]
    fn outage_degrades_but_does_not_stall() {
        let mut cfg = light_cfg(3, 4);
        cfg.outages = vec![ApOutage {
            ap: 0,
            down_at_s: 0.3,
            up_at_s: 0.7,
        }];
        let mut sim = TrafficSim::new(cfg, StubBackend::perfect(3, 3)).unwrap();
        sim.trace.enable();
        let m = sim.run();
        // Packets keep flowing throughout the outage window.
        assert_eq!(m.delivered, m.generated);
        assert!(sim
            .trace
            .events()
            .iter()
            .any(|e| matches!(e.kind, TraceKind::ApDown { ap: 0 })));
        assert!(sim
            .trace
            .events()
            .iter()
            .any(|e| matches!(e.kind, TraceKind::ApUp { ap: 0 })));
        // During the outage no lead election picks AP 0.
        for e in sim.trace.query().between(0.3, 0.7).events() {
            if let TraceKind::LeadElected { ap } = e.kind {
                assert_ne!(ap, 0, "dead AP elected lead at t={}", e.t);
            }
        }
    }

    #[test]
    fn all_aps_down_pauses_then_recovers() {
        let mut cfg = light_cfg(2, 5);
        cfg.outages = vec![
            ApOutage {
                ap: 0,
                down_at_s: 0.2,
                up_at_s: 0.6,
            },
            ApOutage {
                ap: 1,
                down_at_s: 0.2,
                up_at_s: 0.6,
            },
        ];
        let mut sim = TrafficSim::new(cfg, StubBackend::perfect(2, 2)).unwrap();
        let m = sim.run();
        // Everything generated is eventually delivered after recovery.
        assert_eq!(m.delivered, m.generated);
        assert_eq!(m.queued_at_end, 0);
        // The pause shows up as elevated p99 latency.
        assert!(m.p99_latency_s() > 0.05, "p99 {}", m.p99_latency_s());
    }

    #[test]
    fn deterministic_metrics() {
        let run = || {
            let mut cfg = light_cfg(3, 7);
            cfg.outages = vec![ApOutage {
                ap: 1,
                down_at_s: 0.4,
                up_at_s: 0.8,
            }];
            let mut sim = TrafficSim::new(cfg, StubBackend::perfect(3, 3)).unwrap();
            let m = sim.run();
            (
                m.csv_row(),
                m.latencies_s.clone(),
                m.per_client_bits.clone(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn config_validation() {
        assert!(TrafficSim::new(light_cfg(3, 1), StubBackend::perfect(2, 2)).is_err());
        let mut cfg = light_cfg(2, 1);
        cfg.outages = vec![ApOutage {
            ap: 9,
            down_at_s: 0.1,
            up_at_s: 0.2,
        }];
        assert!(TrafficSim::new(cfg, StubBackend::perfect(2, 2)).is_err());
        let mut cfg = light_cfg(2, 1);
        cfg.outages = vec![ApOutage {
            ap: 0,
            down_at_s: 0.2,
            up_at_s: 0.1,
        }];
        assert!(TrafficSim::new(cfg, StubBackend::perfect(2, 2)).is_err());
        let mut cfg = light_cfg(2, 1);
        cfg.duration_s = 0.0;
        assert!(TrafficSim::new(cfg, StubBackend::perfect(2, 2)).is_err());
    }

    #[test]
    fn start_offset_shifts_the_clock_not_the_traffic() {
        // A run at start_s = S is the same run as at t = 0, just on a later
        // clock: same packet counts, same (relative) timeline shape, and
        // latencies matching to fp-rounding of the time shift.
        let run = |start_s: f64| {
            let mut cfg = light_cfg(3, 11);
            cfg.start_s = start_s;
            let mut sim = TrafficSim::new(cfg, StubBackend::perfect(3, 3)).unwrap();
            sim.run()
        };
        let base = run(0.0);
        let late = run(2.5);
        assert_eq!(base.generated, late.generated);
        assert_eq!(base.delivered, late.delivered);
        assert_eq!(base.dropped, late.dropped);
        assert_eq!(base.elapsed_s, base.elapsed_s.max(1.0));
        assert_eq!(base.timeline.len(), late.timeline.len());
        for (a, b) in base.timeline.iter().zip(late.timeline.iter()) {
            assert_eq!(a.t_s, b.t_s, "timeline stays start-relative");
            assert!((a.delivered_bits - b.delivered_bits).abs() < 1e-6);
        }
        assert_eq!(base.latencies_s.len(), late.latencies_s.len());
        for (a, b) in base.latencies_s.iter().zip(late.latencies_s.iter()) {
            assert!((a - b).abs() < 1e-9, "latency {a} vs {b}");
        }
        // Validation: a negative or non-finite start is rejected.
        let mut cfg = light_cfg(2, 11);
        cfg.start_s = -1.0;
        assert!(TrafficSim::new(cfg, StubBackend::perfect(2, 2)).is_err());
        let mut cfg = light_cfg(2, 11);
        cfg.start_s = f64::NAN;
        assert!(TrafficSim::new(cfg, StubBackend::perfect(2, 2)).is_err());
    }

    #[test]
    fn run_bounded_without_limits_matches_run() {
        let run = |bounded: bool| {
            let mut sim = TrafficSim::new(light_cfg(3, 9), StubBackend::perfect(3, 3)).unwrap();
            if bounded {
                let out = sim.run_bounded(RunLimits::none());
                assert_eq!(out.cause, StopCause::Completed);
                assert!(out.events > 0);
                out.metrics
            } else {
                sim.run()
            }
        };
        let (plain, bounded) = (run(false), run(true));
        assert_eq!(plain.csv_row(), bounded.csv_row());
        assert_eq!(plain.latencies_s, bounded.latencies_s);
        assert_eq!(plain.elapsed_s, bounded.elapsed_s);
    }

    #[test]
    fn run_bounded_max_events_stops_early() {
        let mut sim = TrafficSim::new(light_cfg(3, 9), StubBackend::perfect(3, 3)).unwrap();
        let full = sim.run_bounded(RunLimits::none());
        let budget = full.events / 2;
        let mut sim = TrafficSim::new(light_cfg(3, 9), StubBackend::perfect(3, 3)).unwrap();
        let out = sim.run_bounded(RunLimits {
            max_events: Some(budget),
            ..RunLimits::none()
        });
        assert_eq!(out.cause, StopCause::MaxEvents);
        assert_eq!(out.events, budget);
        assert!(out.metrics.delivered < full.metrics.delivered);
        // Truncated elapsed time is not padded up to duration_s.
        assert!(out.metrics.elapsed_s < full.metrics.elapsed_s);
    }

    #[test]
    fn run_bounded_sim_time_deadline() {
        let mut sim = TrafficSim::new(light_cfg(3, 9), StubBackend::perfect(3, 3)).unwrap();
        let out = sim.run_bounded(RunLimits {
            max_sim_time_s: Some(0.25),
            ..RunLimits::none()
        });
        assert_eq!(out.cause, StopCause::MaxSimTime);
        // No processed event lies past the deadline...
        assert!(out.metrics.elapsed_s <= 0.25, "{}", out.metrics.elapsed_s);
        // ...and a deadline past the drain horizon is never hit.
        let mut sim = TrafficSim::new(light_cfg(3, 9), StubBackend::perfect(3, 3)).unwrap();
        let out = sim.run_bounded(RunLimits {
            max_sim_time_s: Some(100.0),
            ..RunLimits::none()
        });
        assert_eq!(out.cause, StopCause::Completed);
    }

    #[test]
    fn run_bounded_stop_predicate_fires_wallclock() {
        let mut sim = TrafficSim::new(light_cfg(3, 9), StubBackend::perfect(3, 3)).unwrap();
        // Fire as soon as any sim time has elapsed; polled every event.
        let out = sim.run_bounded(RunLimits {
            stop: Some(Box::new(|_events, t| t > 0.1)),
            stop_poll_events: 1,
            ..RunLimits::none()
        });
        assert_eq!(out.cause, StopCause::Wallclock);
        assert!(out.metrics.elapsed_s < 1.0);
        // A predicate that never fires leaves the run untouched.
        let mut sim = TrafficSim::new(light_cfg(3, 9), StubBackend::perfect(3, 3)).unwrap();
        let out = sim.run_bounded(RunLimits {
            stop: Some(Box::new(|_, _| false)),
            stop_poll_events: 0, // treated as 1, not a division by zero
            ..RunLimits::none()
        });
        assert_eq!(out.cause, StopCause::Completed);
    }

    #[test]
    fn timeline_accumulates() {
        let cfg = light_cfg(2, 8);
        let mut sim = TrafficSim::new(cfg, StubBackend::perfect(2, 2)).unwrap();
        let m = sim.run();
        assert!(!m.timeline.is_empty());
        let total: f64 = m.timeline.iter().map(|b| b.delivered_bits).sum();
        let per_client: f64 = m.per_client_bits.iter().sum();
        assert!((total - per_client).abs() < 1e-6);
    }
}
