//! Property tests for the backend control-plane accounting: everything a
//! synchronization strategy charges to the air must surface as control
//! overhead in some `TxReport`, exactly once.

use jmb_core::fastnet::FastConfig;
use jmb_core::sync::SyncStrategyId;
use jmb_traffic::{FastBackend, TransmitBackend};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation of control airtime across a random batch schedule:
    /// the overhead charged in `TxReport`s decomposes into measurement
    /// frames (one per remeasurement attempt) plus the strategy's own
    /// control traffic — non-negative, zero for strategies that broadcast
    /// nothing between measurements, and fully drained (a strategy never
    /// keeps charged-but-unreported airtime after a batch).
    #[test]
    fn control_overhead_sums_to_airtime_charged(
        kind_i in 0usize..3,
        seed in 0u64..500,
        n_aps in 2usize..5,
        batches in 1usize..10,
        gap_ms in 0.5..3.0f64,
    ) {
        let kind = SyncStrategyId::ALL[kind_i];
        let mut cfg = FastConfig::default_with(n_aps, n_aps, vec![20.0; n_aps], seed);
        cfg.sync = kind;
        let mut backend = FastBackend::new(cfg).unwrap();
        let meas_s = backend.net_mut().measurement_airtime_s();
        let aps: Vec<usize> = (0..n_aps).collect();
        let mut total_overhead = 0.0;
        let mut n_meas = 0usize;
        let mut elapsed = 0.0;
        for _ in 0..batches {
            backend.advance(gap_ms * 1e-3);
            elapsed += gap_ms * 1e-3;
            let report = backend.transmit_batch(&[0], 1500, &aps).unwrap();
            prop_assert!(report.airtime_s.is_finite() && report.airtime_s >= 0.0);
            prop_assert!(report.control.overhead_s.is_finite());
            total_overhead += report.control.overhead_s;
            n_meas += report.control.remeasurements.len();
            elapsed += report.airtime_s + report.control.overhead_s;
        }
        let sync_part = total_overhead - n_meas as f64 * meas_s;
        prop_assert!(
            sync_part >= -1e-9,
            "{kind:?}: sync control airtime {sync_part} went negative"
        );
        match kind {
            // In-band resync and implicit reciprocity put no control
            // frames on the air between measurements.
            SyncStrategyId::JmbLeadSlave | SyncStrategyId::ReciprocityImplicit => {
                prop_assert!(sync_part.abs() < 1e-9, "{kind:?}: stray charge {sync_part}");
            }
            // Pilots broadcast on a standing schedule: once the run has
            // outlived one pilot interval, the charge must be visible.
            SyncStrategyId::AirSyncPilot => {
                if elapsed > 2.0 * jmb_core::sync::AIRSYNC_PILOT_INTERVAL_S {
                    prop_assert!(sync_part > 0.0, "{kind:?}: pilots never charged");
                }
            }
        }
        // Drained exactly once: nothing left pending in the strategy.
        prop_assert_eq!(backend.net_mut().take_sync_control_airtime_s(), 0.0);
    }
}
