//! A dense conference-room deployment (paper Fig. 5): sweep the number of
//! APs sharing one channel and watch the network's total throughput scale
//! linearly while 802.11's stays flat — the paper's headline result
//! (Fig. 9), on the fast per-subcarrier fidelity.
//!
//! Run with: `cargo run --release --example conference_room`

use jmb::core::experiment::{aggregate_scaling, throughput_scaling, SweepConfig};
use jmb::prelude::*;

fn main() {
    println!("Conference room: N APs and N clients per draw, high SNR band (>18 dB)\n");
    let sweep = SweepConfig {
        n_topologies: 8,
        seed: 42,
        ..Default::default()
    };
    let counts: Vec<usize> = (2..=10).step_by(2).collect();
    let runs = throughput_scaling(&[SnrBand::High], &counts, &sweep, true);
    let agg = aggregate_scaling(&runs);

    println!("APs   JMB total    802.11 total   median per-client gain");
    for p in &agg {
        let bar = "#".repeat((p.jmb_mean / 4e6) as usize);
        println!(
            "{:>3}   {:>7.1} Mbps  {:>7.1} Mbps   {:>5.2}x  {bar}",
            p.n_aps,
            p.jmb_mean / 1e6,
            p.dot11_mean / 1e6,
            p.median_gain
        );
    }
    println!("\nEvery AP added on the same channel adds capacity: that is the paper's");
    println!("thesis. 802.11 stays flat because only one AP may talk at a time.");
}
