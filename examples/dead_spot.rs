//! Rescuing a dead spot with coherent diversity (§8, Fig. 11).
//!
//! A client whose SNR is ~0 dB gets *nothing* from 802.11. With JMB, all
//! APs beamform the same packet coherently — an up-to-N² power gain — and
//! the dead spot comes alive.
//!
//! Run with: `cargo run --release --example dead_spot`

use jmb::core::baseline;
use jmb::prelude::*;

fn main() {
    println!("Dead spot: one client at ~2 dB to every AP\n");
    let params = OfdmParams::default();
    println!("APs   802.11 Mbps   JMB diversity Mbps");
    for n_aps in [2usize, 4, 6, 8, 10] {
        let mut cfg = FastConfig::default_with(n_aps, 1, vec![2.0], 11 + n_aps as u64);
        cfg.ap_spread_db = 2.0; // "roughly similar SNRs to all APs" (§11.4)
        let mut net = FastNet::new(cfg).expect("valid");
        net.run_measurement().expect("measurement");
        net.advance(1e-3);

        let base_snrs = net.baseline_snr_db(0);
        let dot11 = baseline::dot11_client_throughput(&params, &base_snrs, 1, 1500);

        let div_snrs = net.diversity_snr_db(0).expect("diversity");
        let over = baseline::JmbOverheads::new(&params, 150e-6, 1e-3, 0.25).with_aggregation(4);
        let jmb = match jmb::phy::esnr::select_mcs(&div_snrs) {
            Some(mcs) => baseline::jmb_client_throughput(&params, mcs, &div_snrs, 1500, &over),
            None => 0.0,
        };
        println!("{n_aps:>3}   {:>11.2}   {:>18.2}", dot11 / 1e6, jmb / 1e6);
    }
    println!("\n\"a client that has 0 dB channels to all APs cannot get any throughput");
    println!("with 802.11. However … with 10 APs, such a client can achieve a");
    println!("throughput of 21 Mbps\" (§11.4). Diversity expands coverage range.");
}
