//! A loaded JMB network: 4 APs serving 4 clients through the
//! discrete-event traffic subsystem, with the offered load ramping from a
//! trickle to well past saturation. Watch the classic queueing knee: the
//! goodput line tracks the offered line, then flattens at capacity while
//! latency takes off.
//!
//! Run with: `cargo run --release --example loaded_network`

use jmb::core::fastnet::FastConfig;
use jmb::prelude::*;

fn main() {
    println!("Loaded network: 4 APs / 4 clients, Poisson downlink per client\n");
    let seed = 42;
    let rates = [100.0, 250.0, 500.0, 1000.0, 1500.0, 2000.0, 3000.0];
    println!("per-client  offered    goodput     median    p99");
    println!("   pkt/s     Mb/s       Mb/s        ms        ms");

    let mut knee_rate = None;
    let mut prev_median_ms = 0.0;
    for &rate_pps in &rates {
        let backend =
            FastBackend::new(FastConfig::default_with(4, 4, vec![28.0; 4], seed)).expect("backend");
        let loads = vec![ClientLoad::poisson(rate_pps, 1500); 4];
        let mut cfg = TrafficConfig::default_with(loads, seed);
        cfg.duration_s = 0.5;
        let m = TrafficSim::new(cfg, backend).expect("sim").run();

        let median_ms = m.median_latency_s() * 1e3;
        let bar = "#".repeat((median_ms.min(300.0) / 4.0) as usize);
        println!(
            "{rate_pps:>8.0}  {:>7.1}  {:>9.1}  {:>8.2}  {:>8.1}  {bar}",
            m.offered_bps / 1e6,
            m.goodput_bps() / 1e6,
            median_ms,
            m.p99_latency_s() * 1e3,
        );
        // The knee: median latency jumps an order of magnitude once the
        // queue stops draining between arrivals.
        if knee_rate.is_none() && prev_median_ms > 0.0 && median_ms > 10.0 * prev_median_ms {
            knee_rate = Some(rate_pps);
        }
        prev_median_ms = median_ms;
    }

    match knee_rate {
        Some(r) => println!(
            "\nLatency knee near {r:.0} pkt/s per client ({:.0} Mb/s offered aggregate):",
            r * 4.0 * 1500.0 * 8.0 / 1e6
        ),
        None => println!("\nNo latency knee inside the sweep range:"),
    }
    println!("below it the network is delay-bound (sub-ms queues), above it");
    println!("throughput-bound — add APs to move the knee, not spectrum (§1).");
}
