//! Off-the-shelf 802.11n compatibility (§6): two 2-antenna APs combine into
//! a distributed 4×4 MIMO system serving two unmodified 2-antenna clients,
//! using the legacy-preamble sync header and the reference-antenna channel
//! stitching of §6.2.
//!
//! Run with: `cargo run --release --example n80211_compat`

use jmb::prelude::*;

fn main() {
    println!("802.11n compatibility: 2× (2-antenna AP) → 2× (2-antenna client)\n");
    let mut gains = Vec::new();
    for seed in 0..6u64 {
        let cfg = CompatConfig::default_with(22.0, seed);
        let mut net = CompatNet::new(cfg).expect("valid");
        // §6.2: a series of two-stream soundings, each containing the
        // reference antenna, stitched to one common-time 4×4 snapshot.
        net.run_stitched_measurement().expect("stitching");
        net.advance(2e-3);
        let jmb: f64 = net.jmb_throughput(1500).expect("joint").iter().sum();
        let dot: f64 = net.dot11n_throughput(1500).iter().sum();
        println!(
            "run {seed}: JMB 4x4 {:>6.1} Mbps   802.11n TDMA {:>6.1} Mbps   gain {:.2}x",
            jmb / 1e6,
            dot / 1e6,
            jmb / dot
        );
        gains.push(jmb / dot);
    }
    println!(
        "\nmean gain {:.2}x (paper: 1.67-1.83x, theoretical max 2x).",
        jmb::dsp::stats::mean(&gains)
    );
    println!("No client modification needed: the clients run plain 802.11n CSI feedback.");
}
