//! Why naive CFO extrapolation cannot work (§1), reproduced numerically.
//!
//! Estimate the frequency offset between two oscillators once, then predict
//! the phase from `Δφ = Δω·t`. Even a 10 Hz estimation error — orders of
//! magnitude better than crystal tolerances — accumulates 0.35 rad (20°) in
//! 5.5 ms, enough to wreck beamforming (Fig. 6). JMB's direct per-packet
//! phase measurement has no accumulation at all.
//!
//! Run with: `cargo run --release --example phase_drift`

use jmb::core::experiment::drift_motivation;

fn main() {
    println!("Naive frequency-offset extrapolation vs JMB direct measurement\n");
    let horizons = [1e-3, 2e-3, 5.5e-3, 10e-3, 20e-3, 50e-3];
    println!("elapsed   naive(1Hz)  naive(10Hz)  naive(100Hz)  direct");
    let runs: Vec<Vec<_>> = [1.0, 10.0, 100.0]
        .iter()
        .map(|&err| drift_motivation(err, &horizons, 400, 3))
        .collect();
    for (i, &t) in horizons.iter().enumerate() {
        println!(
            "{:>5.1}ms   {:>8.3}    {:>8.3}     {:>8.3}   {:>7.3}  (radians)",
            t * 1e3,
            runs[0][i].naive_err_rad,
            runs[1][i].naive_err_rad,
            runs[2][i].naive_err_rad,
            runs[1][i].direct_err_rad,
        );
    }
    println!("\npaper anchor: 10 Hz × 5.5 ms ⇒ 0.35 rad (20°) — \"such a large error in");
    println!("the phase of the beamformed signals will cause significant interference\"");
    println!("(§1). The direct measurement column never grows: that is JMB.");
}
