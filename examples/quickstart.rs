//! Quickstart: two independent APs jointly beamform two packets to two
//! clients on the same channel, end to end through the sample-level
//! simulator — oscillators drifting, real OFDM waveforms, real decoding.
//!
//! Run with: `cargo run --release --example quickstart`

use jmb::prelude::*;

fn main() {
    println!("JMB quickstart: 2 APs → 2 clients, one channel, concurrent packets\n");

    // Build a 2-AP / 2-client network at a 22 dB SNR band. Every node gets
    // its own USRP2-class oscillator (±2.5 ppm) — the APs do NOT share a
    // clock; that is the whole point.
    let cfg = NetConfig::default_with(2, 2, 22.0, 9);
    let mut net = JmbNetwork::new(cfg).expect("valid config");

    // Phase 1 (§5.1): the channel-measurement packet. Clients estimate the
    // joint channel matrix H; each slave AP stores its reference channel to
    // the lead.
    net.run_measurement().expect("measurement");
    println!(
        "channel measured; precoder power normalisation k̂ = {:.4}",
        net.k_hat().unwrap()
    );

    // Let the oscillators drift for a few milliseconds — long enough that
    // naive frequency-offset extrapolation would already have failed (§1:
    // 10 Hz of error is 0.35 rad after 5.5 ms).
    net.advance(4e-3);

    // Phase 2 (§5.2): a joint transmission. The lead sends a sync header;
    // the slave re-measures the lead channel, corrects its phase, and both
    // APs transmit concurrently. Each client decodes its own packet with a
    // completely standard OFDM receiver.
    let payloads = vec![
        b"hello client 0 - this packet arrived through joint beamforming".to_vec(),
        b"hello client 1 - sent at the same time on the same channel!!!!".to_vec(),
    ];
    let mcs = net.select_rate().unwrap_or(Mcs::BASE);
    println!("joint rate selected by effective SNR: {mcs}");
    let results = net
        .joint_transmit(&payloads, mcs, true)
        .expect("protocol ran");

    for (i, r) in results.iter().enumerate() {
        match r {
            Ok(rx) => println!(
                "client {i}: decoded {:?} (EVM {:.1} dB)",
                String::from_utf8_lossy(&rx.payload),
                rx.evm_db
            ),
            Err(e) => println!("client {i}: decode failed: {e}"),
        }
    }

    // The ablation: same network, corrections disabled. With the channel
    // matrix now several milliseconds stale, beamforming falls apart.
    net.advance(2e-3);
    let broken = net
        .joint_transmit(&payloads, mcs, false)
        .expect("protocol ran");
    let failures = broken.iter().filter(|r| r.is_err()).count();
    println!("\nwithout phase sync: {failures}/2 packets lost — \"the drift between their");
    println!("oscillators will make the signals rotate at different speeds … preventing");
    println!("beamforming\" (§1). Phase synchronization is the system.");
}
