#!/usr/bin/env bash
# Tier-1 gate: build, tests, lints, formatting.
#
# The jmb-* packages must be clippy- and rustfmt-clean; the vendored
# stand-in crates under vendor/ (rand, proptest, criterion) are kept
# byte-comparable to their upstreams and are exempt from formatting.
#
# The jmb-lint deny pass at the end includes the determinism lints
# (no-unordered-iteration, float-reduction-order, no-ambient-parallelism,
# ordered-merge). Their dynamic counterpart — the schedule-perturbation
# harness — is CI's det-matrix job; run it locally with
#   cargo run --release -p jmb-bench --bin det_harness -- --quick
set -euo pipefail
cd "$(dirname "$0")/.."

JMB_PKGS=(-p jmb -p jmb-bench -p jmb-channel -p jmb-city -p jmb-core -p jmb-dsp -p jmb-lint -p jmb-obs -p jmb-phy -p jmb-scenario -p jmb-sim -p jmb-traffic)

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt "${JMB_PKGS[@]}" -- --check
cargo run --release -p jmb-lint -- --deny

echo "tier-1 checks passed"
