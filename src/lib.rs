//! # jmb — joint multi-user beamforming across distributed access points
//!
//! A from-scratch Rust reproduction of **"JMB: Scaling Wireless Capacity
//! with User Demands"** (Rahul, Kumar, Katabi — SIGCOMM 2012, also known by
//! its system name *MegaMIMO*): a wireless LAN architecture in which
//! independent APs — each with its own free-running oscillator — transmit
//! *concurrently on the same channel* to multiple clients, as if they were
//! one large MIMO transmitter. Network throughput then scales with the
//! number of APs instead of being capped by a single transmitter.
//!
//! The hard part, and the paper's core contribution, is **distributed phase
//! synchronization**: slave APs measure the lead AP's channel from a short
//! sync header before every joint transmission, turning phase alignment
//! into a *direct measurement* instead of an error-accumulating
//! frequency-offset extrapolation.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`dsp`] — complex arithmetic, FFT, complex linear algebra, statistics;
//! * [`phy`] — an 802.11-style OFDM PHY (modulation, convolutional coding,
//!   Viterbi, interleaving, sync, channel estimation, framing, rate tables);
//! * [`channel`] — oscillators, multipath fading, path loss, conference-room
//!   topologies (the substitution for the paper's USRP2 testbed);
//! * [`sim`] — the simulated radio medium, at sample-level and
//!   per-subcarrier fidelities;
//! * [`core`] — JMB itself: phase sync, joint beamforming, the measurement
//!   protocol, the link layer, 802.11n compatibility, the baselines, and
//!   the experiment harness that regenerates every figure of the paper;
//! * [`traffic`] — the discrete-event traffic subsystem: per-client offered
//!   load, queueing and latency through the shared downlink queue, and AP
//!   failover, over either PHY fidelity;
//! * [`obs`] — observability: the structured trace pipeline (events, sinks,
//!   the `TraceQuery` replay/assertion API), the metrics registry, and
//!   wall-clock spans. Also re-exported through [`sim`];
//! * [`city`] — the city scale: a sharded grid of hundreds of cells with
//!   frequency-reuse coloring and inter-cell interference coupling, pooled
//!   deterministically across worker threads.
//!
//! ## Quickstart
//!
//! ```
//! use jmb::prelude::*;
//!
//! // Two independent APs, two single-antenna clients, 22 dB SNR band.
//! let cfg = NetConfig::default_with(2, 2, 22.0, 42);
//! let mut net = JmbNetwork::new(cfg).unwrap();
//!
//! // Channel-measurement phase (§5.1), then let the oscillators drift.
//! net.run_measurement().unwrap();
//! net.advance(2e-3);
//!
//! // One joint transmission: both packets delivered concurrently.
//! let payloads = vec![b"to client zero".to_vec(), b"to client one!".to_vec()];
//! let results = net.joint_transmit(&payloads, Mcs::ALL[2], true).unwrap();
//! for (client, r) in results.iter().enumerate() {
//!     assert_eq!(r.as_ref().unwrap().payload, payloads[client]);
//! }
//! ```
//!
//! See `examples/` for richer scenarios and `crates/bench` for the figure
//! regeneration harness; DESIGN.md maps every paper experiment to code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use jmb_channel as channel;
pub use jmb_city as city;
pub use jmb_core as core;
pub use jmb_dsp as dsp;
pub use jmb_obs as obs;
pub use jmb_phy as phy;
pub use jmb_sim as sim;
pub use jmb_traffic as traffic;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use jmb_channel::{Link, Multipath, MultipathSpec, Oscillator, OscillatorSpec, SnrBand};
    pub use jmb_city::{City, CityConfig, CityReport, Grid, Reuse};
    pub use jmb_core::baseline;
    pub use jmb_core::compat::{CompatConfig, CompatNet};
    pub use jmb_core::experiment;
    pub use jmb_core::fastnet::{FastConfig, FastNet};
    pub use jmb_core::mac::{JmbMac, MacConfig};
    pub use jmb_core::net::{JmbNetwork, NetConfig};
    pub use jmb_core::{JmbError, PhaseSync, Precoder};
    pub use jmb_dsp::{CMat, Complex64};
    pub use jmb_phy::rates::Mcs;
    pub use jmb_phy::{ChannelProfile, OfdmParams};
    pub use jmb_sim::{Medium, SubcarrierMedium};
    pub use jmb_traffic::{
        ApOutage, ArrivalProcess, ClientLoad, FastBackend, PacketSizeDist, SampleBackend,
        TrafficConfig, TrafficMetrics, TrafficSim, TransmitBackend,
    };
}
