//! Cross-backend parity for the traffic layer: the sample-level PHY
//! (`SampleBackend`, real OFDM + CRC decodes) must deliver the goodput the
//! per-subcarrier EESM model (`FastBackend`) predicts for the same cell.
//! The large figure sweeps run on the fast model — this pins its honesty
//! against the full PHY at a size small enough for debug-mode `cargo test`.

use jmb::core::fastnet::FastConfig;
use jmb::prelude::*;
use jmb::traffic::TrafficMetrics;

/// One small cell (2 APs, 2 clients, comfortable 22 dB SNR, light Poisson
/// load) run to completion on the given backend.
fn run_cell<B: TransmitBackend>(backend: B, seed: u64) -> TrafficMetrics {
    let loads = vec![ClientLoad::poisson(60.0, 200); 2];
    let mut cfg = TrafficConfig::default_with(loads, seed);
    cfg.duration_s = 0.05;
    cfg.drain_timeout_s = 0.05;
    TrafficSim::new(cfg, backend).unwrap().run()
}

#[test]
fn sample_backend_goodput_matches_fast_backend_prediction() {
    let seed = 23;
    let fast = run_cell(
        FastBackend::new(FastConfig::default_with(2, 2, vec![22.0; 2], seed)).unwrap(),
        seed,
    );
    let sample = run_cell(
        SampleBackend::new(NetConfig::default_with(2, 2, 22.0, seed)).unwrap(),
        seed,
    );

    // Both fidelities must actually carry traffic at this margin.
    assert!(fast.delivered > 0, "fast backend delivered nothing");
    assert!(sample.delivered > 0, "sample backend delivered nothing");
    assert!(
        sample.delivery_ratio() > 0.9,
        "sample-level cell should be clean at 22 dB: ratio {}",
        sample.delivery_ratio()
    );

    // Goodput parity: the EESM prediction and the real decode chain see the
    // same arrivals (same traffic seed), so delivered goodput may differ
    // only through PHY-model disagreement — bounded at 25% relative.
    let (gf, gs) = (fast.goodput_bps(), sample.goodput_bps());
    let rel = (gf - gs).abs() / gf.max(gs);
    assert!(
        rel < 0.25,
        "goodput diverges across fidelities: fast {:.2} Mb/s vs sample {:.2} Mb/s ({:.0}% apart)",
        gf / 1e6,
        gs / 1e6,
        rel * 100.0
    );

    // Delivery-ratio parity, absolute.
    let dr = (fast.delivery_ratio() - sample.delivery_ratio()).abs();
    assert!(
        dr < 0.15,
        "delivery ratios diverge: fast {:.3} vs sample {:.3}",
        fast.delivery_ratio(),
        sample.delivery_ratio()
    );
}

#[test]
fn parity_holds_across_seeds() {
    // A second seed guards against the first test passing by coincidence of
    // one arrival pattern.
    let seed = 31;
    let fast = run_cell(
        FastBackend::new(FastConfig::default_with(2, 2, vec![22.0; 2], seed)).unwrap(),
        seed,
    );
    let sample = run_cell(
        SampleBackend::new(NetConfig::default_with(2, 2, 22.0, seed)).unwrap(),
        seed,
    );
    assert!(sample.delivered > 0 && fast.delivered > 0);
    let (gf, gs) = (fast.goodput_bps(), sample.goodput_bps());
    let rel = (gf - gs).abs() / gf.max(gs);
    assert!(
        rel < 0.25,
        "goodput diverges: fast {:.2} Mb/s vs sample {:.2} Mb/s",
        gf / 1e6,
        gs / 1e6
    );
}
