//! Cross-validation of the two simulation fidelities: the per-subcarrier
//! medium must agree with the sample-level medium about the physical
//! channel, because the large experiment sweeps trust the fast model.

use jmb::channel::oscillator::PhaseTrajectory;
use jmb::channel::{Link, Multipath, MultipathSpec};
use jmb::dsp::Complex64;
use jmb::phy::params::OfdmParams;
use jmb::phy::preamble;
use jmb::sim::{Medium, SubcarrierMedium};

const FC: f64 = 2.437e9;

/// Measures the per-subcarrier channel through the *sample-level* medium by
/// transmitting an LTF and estimating, then compares with the *frequency-
/// domain* medium's `channel_at` for identical link/oscillator parameters.
#[test]
fn sample_level_channel_matches_subcarrier_model() {
    let params = OfdmParams::default();
    let mut rng = jmb::dsp::rng::rng_from_seed(5);
    let link = Link::new(
        Complex64::from_polar(0.9, 0.7),
        42e-9,
        Multipath::new(MultipathSpec::indoor_nlos(), &mut rng),
    );
    let cfo = 2_000.0;

    // Sample level: transmit an LTF, estimate the channel.
    let mut m = Medium::new(params.clone(), 1);
    let tx = m.add_node(PhaseTrajectory::fixed(FC, cfo), 0.0);
    let rx = m.add_node(PhaseTrajectory::fixed(FC, 0.0), 1e-12);
    m.set_link(tx, rx, link.clone());
    let t0 = 1e-4;
    m.transmit(tx, t0, preamble::ltf(&params));
    let window = m.render_rx(rx, t0, preamble::LTF_LEN);
    // De-rotate the known CFO (phase anchored at the window start) so the
    // remaining response is the static channel at t0.
    let mut derotated = window.clone();
    let ts = params.sample_period();
    for (n, x) in derotated.iter_mut().enumerate() {
        let t = t0 + n as f64 * ts;
        *x *= Complex64::cis(-2.0 * std::f64::consts::PI * cfo * t);
    }
    let est = jmb::phy::chanest::estimate_from_ltf(&params, &derotated);

    // Frequency domain: same link and oscillators.
    let mut fm = SubcarrierMedium::new(params.clone(), 2);
    let ftx = fm.add_node(PhaseTrajectory::fixed(FC, cfo), 0.0);
    let frx = fm.add_node(PhaseTrajectory::fixed(FC, 0.0), 0.0);
    fm.set_link(ftx, frx, link);

    let mut worst = 0.0f64;
    for (i, &k) in est.subcarriers.iter().enumerate() {
        let fast =
            fm.channel_at(ftx, frx, k, t0) * Complex64::cis(-2.0 * std::f64::consts::PI * cfo * t0);
        let slow = est.gains[i];
        let err = (fast - slow).abs() / fast.abs().max(1e-6);
        worst = worst.max(err);
    }
    assert!(
        worst < 0.08,
        "fidelities disagree by up to {worst:.3} (relative)"
    );
}

/// The relative oscillator rotation over time — the quantity JMB's phase
/// sync measures — must be identical in both fidelities.
#[test]
fn oscillator_rotation_agrees_across_fidelities() {
    let params = OfdmParams::default();
    let cfo = -3_456.0;
    let mut fm = SubcarrierMedium::new(params.clone(), 3);
    let a = fm.add_node(PhaseTrajectory::fixed(FC, cfo), 0.0);
    let b = fm.add_node(PhaseTrajectory::fixed(FC, 0.0), 0.0);
    fm.set_link(a, b, Link::ideal());
    let dt = 2.5e-3;
    let h0 = fm.channel_at(a, b, 1, 0.1);
    let h1 = fm.channel_at(a, b, 1, 0.1 + dt);
    let measured = (h1 * h0.conj()).arg();
    let expected = jmb::dsp::complex::wrap_phase(2.0 * std::f64::consts::PI * cfo * dt);
    // Tolerance admits the (physically correct) sampling-offset ramp the
    // shared crystal adds on subcarrier 1 over dt (~3.5 mrad here).
    assert!(
        (jmb::dsp::complex::wrap_phase(measured - expected)).abs() < 5e-3,
        "rotation {measured} vs {expected}"
    );
}

/// A full packet decoded through both fidelities: the frequency-domain
/// transport of a frame's bins must decode exactly like the time-domain
/// waveform through an equivalent clean channel.
#[test]
fn packet_decodes_identically_in_both_fidelities() {
    let params = OfdmParams::default();
    let tx = jmb::phy::FrameTx::new(params.clone());
    let rxr = jmb::phy::FrameRx::new(params.clone());
    let payload: Vec<u8> = (0..200).map(|i| (i * 13 + 5) as u8).collect();
    let mcs = jmb::phy::rates::Mcs::ALL[4];

    // Time domain through the sample-level medium.
    let mut m = Medium::new(params.clone(), 4);
    let a = m.add_node(PhaseTrajectory::fixed(FC, 0.0), 1e-9);
    let b = m.add_node(PhaseTrajectory::fixed(FC, 0.0), 1e-9);
    m.set_link(a, b, Link::ideal());
    let wave = tx.tx_frame(mcs, &payload).unwrap();
    let n = wave.len();
    m.transmit(a, 64.0 * params.sample_period(), wave);
    let window = m.render_rx(b, 0.0, n + 128);
    let time_result = rxr.rx_frame(&window).expect("time-domain decode");
    assert_eq!(time_result.payload, payload);

    // Frequency domain through the subcarrier medium.
    let mut fm = SubcarrierMedium::new(params.clone(), 5);
    let fa = fm.add_node(PhaseTrajectory::fixed(FC, 0.0), 1e-9);
    let fb = fm.add_node(PhaseTrajectory::fixed(FC, 0.0), 1e-9);
    fm.set_link(fa, fb, Link::ideal());
    let bins = tx.build_bins(mcs, &payload).unwrap();
    let mut rx_bins = Vec::new();
    for (s, sym) in bins.symbols.iter().enumerate() {
        let t = s as f64 * params.symbol_duration();
        let out = fm.transmit_symbol(&[(fa, sym.as_slice())], &[fb], t);
        rx_bins.push(out.into_iter().next().unwrap());
    }
    let channel = jmb::phy::chanest::estimate_ideal(&params);
    let freq_result = rxr
        .decode_stream_bins(&rx_bins, &channel, 1e-9)
        .expect("frequency-domain decode");
    assert_eq!(freq_result.payload, payload);
    assert_eq!(freq_result.mcs, time_result.mcs);
}
