//! Workspace integration: the full JMB story over the sample-level
//! simulator, including the link layer and fault injection.

use jmb::prelude::*;

fn payloads(n: usize, len: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|j| (0..len).map(|i| (i * 31 + j * 7 + 3) as u8).collect())
        .collect()
}

#[test]
fn headline_two_aps_two_clients() {
    // The paper's Fig. 1(b): two APs, one channel, two concurrent packets.
    let cfg = NetConfig::default_with(2, 2, 22.0, 9);
    let mut net = JmbNetwork::new(cfg).unwrap();
    net.run_measurement().unwrap();
    net.advance(4e-3);
    let data = payloads(2, 120);
    let mcs = net.select_rate().expect("usable rate");
    let results = net.joint_transmit(&data, mcs, true).unwrap();
    for (j, r) in results.iter().enumerate() {
        assert_eq!(r.as_ref().expect("decode").payload, data[j], "client {j}");
    }
}

#[test]
fn mac_driven_delivery_with_losses() {
    // Run the shared-queue MAC over the sample-level network with fault
    // injection: dropped joint transmissions must be retransmitted and all
    // packets eventually delivered (§9: packets stay queued until ACKed).
    let cfg = NetConfig::default_with(2, 2, 22.0, 9);
    let mut net = JmbNetwork::new(cfg).unwrap();
    net.run_measurement().unwrap();
    net.medium_mut()
        .set_fault(jmb::sim::FaultConfig::with_drop_chance(0.2));

    let mut mac = JmbMac::new(MacConfig::default(), vec![0, 1]);
    for round in 0..4 {
        mac.enqueue(0, payloads(1, 60 + round).remove(0));
        mac.enqueue(1, payloads(1, 90 + round).remove(0));
    }
    let mcs = net.select_rate().unwrap_or(Mcs::BASE);
    let mut guard = 0;
    while mac.queue_len() > 0 && guard < 60 {
        guard += 1;
        net.advance(1e-3);
        let batch = mac.select_batch();
        if batch.is_empty() {
            break;
        }
        // The joint transmission needs one payload per client; absent
        // clients get a padding packet the MAC would normally skip.
        let mut per_client = vec![vec![0u8; batch[0].payload.len()]; 2];
        for p in &batch {
            per_client[p.dest] = p.payload.clone();
        }
        let results = net.joint_transmit(&per_client, mcs, true).unwrap();
        let acked: Vec<bool> = batch.iter().map(|p| results[p.dest].is_ok()).collect();
        let airtime =
            jmb::core::baseline::frame_airtime(&OfdmParams::default(), mcs, batch[0].payload.len());
        mac.complete_batch(batch, &acked, airtime);
    }
    assert_eq!(mac.queue_len(), 0, "queue should drain");
    assert_eq!(mac.stats.dropped_total(), 0, "no packet abandoned");
    assert!(mac.stats.delivered_bits_for(0) > 0.0 && mac.stats.delivered_bits_for(1) > 0.0);
    assert!(
        mac.stats.transmissions() >= 8,
        "with 20% drops, retransmissions must have happened ({} tx)",
        mac.stats.transmissions()
    );
}

#[test]
fn phase_sync_is_necessary() {
    // The central ablation at workspace level.
    let cfg = NetConfig::default_with(3, 3, 22.0, 7);
    let mut net = JmbNetwork::new(cfg).unwrap();
    net.run_measurement().unwrap();
    net.advance(3e-3);
    let data = payloads(3, 80);
    let ok = net
        .joint_transmit(&data, Mcs::ALL[1], true)
        .unwrap()
        .iter()
        .filter(|r| r.is_ok())
        .count();
    let broken = net
        .joint_transmit(&data, Mcs::ALL[1], false)
        .unwrap()
        .iter()
        .filter(|r| r.is_ok())
        .count();
    assert!(ok > broken, "sync {ok}/3 vs no-sync {broken}/3");
    assert_eq!(ok, 3);
}

#[test]
fn measurement_amortised_across_coherence_time() {
    // One measurement, many packets over tens of milliseconds (§5: channels
    // only need re-measuring on the order of the coherence time).
    let cfg = NetConfig::default_with(2, 2, 20.0, 21);
    let mut net = JmbNetwork::new(cfg).unwrap();
    net.run_measurement().unwrap();
    let data = payloads(2, 60);
    let mcs = net.select_rate().unwrap_or(Mcs::BASE);
    let mut delivered = 0;
    let mut total = 0;
    for _ in 0..8 {
        net.advance(5e-3); // 40 ms total — many naive-extrapolation lifetimes
        for r in net.joint_transmit(&data, mcs, true).unwrap() {
            total += 1;
            if r.is_ok() {
                delivered += 1;
            }
        }
    }
    assert!(
        delivered * 10 >= total * 8,
        "delivery {delivered}/{total} under one measurement"
    );
}

#[test]
fn diversity_rescues_weak_client() {
    let cfg = NetConfig::default_with(4, 1, 10.0, 5);
    let mut net = JmbNetwork::new(cfg).unwrap();
    net.run_measurement().unwrap();
    net.advance(1e-3);
    let payload: Vec<u8> = (0..60).map(|i| i as u8).collect();
    let r = net.diversity_transmit(&payload, Mcs::ALL[1]).unwrap();
    assert_eq!(r.expect("diversity decode").payload, payload);
}
