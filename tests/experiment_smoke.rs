//! Smoke tests for every figure-regeneration function: small sweeps, shape
//! assertions matching the paper's qualitative claims. The full sweeps run
//! from `jmb-bench`'s figure binaries.

use jmb::channel::SnrBand;
use jmb::core::experiment::*;

fn sweep(n: usize) -> SweepConfig {
    SweepConfig {
        n_topologies: n,
        seed: 11,
        parallelism: 4,
        ..Default::default()
    }
}

#[test]
fn fig06_shape() {
    let pts = snr_reduction_vs_misalignment(&[0.0, 0.2, 0.35, 0.5], &[10.0, 20.0], 40, 1);
    // Zero misalignment → zero loss; loss grows with misalignment; higher
    // SNR loses more (paper §11.1a).
    let at = |snr: f64, phi: f64| {
        pts.iter()
            .find(|p| p.snr_db == snr && (p.misalignment_rad - phi).abs() < 1e-9)
            .unwrap()
            .reduction_db
    };
    assert!(at(20.0, 0.0).abs() < 1e-9);
    assert!(at(20.0, 0.35) > at(20.0, 0.2));
    assert!(at(20.0, 0.35) > at(10.0, 0.35));
    assert!(at(20.0, 0.35) > 3.0, "0.35 rad must cost several dB");
}

#[test]
fn fig07_misalignment_near_paper() {
    let samples = misalignment_samples(3, 25, 11).expect("probe");
    let median = jmb::dsp::stats::median(&samples);
    let p95 = jmb::dsp::stats::percentile(&samples, 95.0);
    // Paper: median 0.017 rad, 95th 0.05 rad. Same order of magnitude.
    assert!(median < 0.06, "median misalignment {median}");
    assert!(p95 < 0.15, "95th pct misalignment {p95}");
}

#[test]
fn fig08_inr_small_and_growing() {
    let pts = inr_scaling(&[SnrBand::High], &[2, 6], &sweep(3));
    assert_eq!(pts.len(), 2);
    for p in &pts {
        assert!(p.inr_db > -0.5 && p.inr_db < 4.0, "INR {}", p.inr_db);
    }
    assert!(pts[1].inr_db >= pts[0].inr_db - 0.3);
}

#[test]
fn fig09_linear_scaling() {
    let runs = throughput_scaling(&[SnrBand::High], &[2, 6, 10], &sweep(4), true);
    let agg = aggregate_scaling(&runs);
    let gain = |n: usize| {
        let p = agg.iter().find(|p| p.n_aps == n).unwrap();
        p.jmb_mean / p.dot11_mean
    };
    assert!(gain(6) > gain(2) * 1.5, "{} vs {}", gain(6), gain(2));
    assert!(gain(10) > gain(6), "{} vs {}", gain(10), gain(6));
    // 802.11 stays flat.
    let d2 = agg.iter().find(|p| p.n_aps == 2).unwrap().dot11_mean;
    let d10 = agg.iter().find(|p| p.n_aps == 10).unwrap().dot11_mean;
    assert!((d10 / d2 - 1.0).abs() < 0.5);
}

#[test]
fn fig10_gains_cluster() {
    let runs = throughput_scaling(&[SnrBand::Medium], &[6], &sweep(4), true);
    let gains: Vec<f64> = runs
        .iter()
        .flat_map(|r| r.per_client_gain.iter().copied())
        .filter(|g| g.is_finite() && *g > 0.0)
        .collect();
    assert!(gains.len() >= 12);
    let med = jmb::dsp::stats::median(&gains);
    let p10 = jmb::dsp::stats::percentile(&gains, 10.0);
    // Fairness: the 10th-percentile client still gets a decent share of the
    // median gain.
    assert!(p10 > 0.25 * med, "p10 {p10} vs median {med}");
}

#[test]
fn fig11_diversity_shape() {
    let pts = diversity_sweep(&[2, 10], &[2.0, 10.0], &sweep(4));
    let at = |n: usize, s: f64| pts.iter().find(|p| p.n_aps == n && p.snr_db == s).unwrap();
    // More APs help, most dramatically at low SNR where 802.11 gets little.
    assert!(at(10, 2.0).jmb > at(2, 2.0).jmb);
    assert!(at(10, 2.0).jmb > at(10, 2.0).dot11);
    assert!(at(10, 10.0).jmb >= at(10, 2.0).jmb * 0.8);
}

#[test]
fn fig12_13_compat_gain() {
    let runs = compat_runs(&[SnrBand::High], &sweep(5));
    assert!(!runs.is_empty());
    let gains: Vec<f64> = runs.iter().map(|r| r.gain).collect();
    let mean = jmb::dsp::stats::mean(&gains);
    // Paper: 1.67–1.83×, bounded by 2×. Ours lands lower but must beat 1×
    // on average and stay under the theoretical bound.
    assert!(mean > 1.0, "mean compat gain {mean}");
    assert!(gains.iter().all(|g| *g < 2.3), "gain above 2× bound");
}

#[test]
fn fig00_drift() {
    let pts = drift_motivation(10.0, &[5.5e-3, 20e-3], 200, 1);
    assert!(pts[0].naive_err_rad > 0.15, "{}", pts[0].naive_err_rad);
    assert!(pts[1].naive_err_rad > pts[0].naive_err_rad);
    assert!(pts[0].direct_err_rad < 0.02 && pts[1].direct_err_rad < 0.02);
}

#[test]
fn ablation_sync_off_collapses() {
    let on = aggregate_scaling(&throughput_scaling(&[SnrBand::High], &[4], &sweep(3), true));
    let off = aggregate_scaling(&throughput_scaling(
        &[SnrBand::High],
        &[4],
        &sweep(3),
        false,
    ));
    assert!(on[0].jmb_mean > 2.0 * off[0].jmb_mean.max(1.0));
}
