//! Determinism-under-observation tests: the observability layer must be a
//! pure *reader* of the simulation. Same seed ⇒ byte-identical trace
//! streams regardless of sweep parallelism; attaching or detaching a
//! [`TraceSink`] must never perturb simulation results; trace timestamps
//! from `FastBackend` runs must be monotone non-decreasing; and the
//! JSON-lines dump must replay losslessly.

use jmb::core::experiment::{parallel_map, SweepConfig};
use jmb::core::fastnet::FastConfig;
use jmb::prelude::*;
use jmb::sim::{FaultConfig, FaultSchedule, JsonLinesSink, RingBufferSink, TraceQuery};
use jmb::traffic::TrafficMetrics;

const DURATION_S: f64 = 0.1;

fn storm_sim(seed: u64) -> TrafficSim<FastBackend> {
    let n = 3;
    let cfg = FastConfig::default_with(n, n, vec![28.0; n], seed);
    let mut backend = FastBackend::new(cfg).expect("backend");
    // A mid-run sync-loss storm so the trace carries control-plane events,
    // not just MAC traffic.
    let storm = FaultSchedule::none()
        .with_window(
            DURATION_S / 3.0,
            DURATION_S * 2.0 / 3.0,
            FaultConfig::builder()
                .per_slave_sync_loss(1, 1.0)
                .build()
                .expect("valid"),
        )
        .expect("valid window");
    backend.net_mut().set_fault_schedule(storm);
    let loads = vec![ClientLoad::poisson(900.0, 1000); n];
    let mut tcfg = TrafficConfig::default_with(loads, seed);
    tcfg.duration_s = DURATION_S;
    tcfg.drain_timeout_s = DURATION_S * 0.5;
    TrafficSim::new(tcfg, backend).expect("sim")
}

/// Runs a 4-sim sweep at the given parallelism and returns each sim's
/// trace as JSONL plus its CSV row (index order, independent of thread
/// interleaving).
fn sweep_traces(parallelism: usize) -> Vec<(String, Vec<String>)> {
    let sweep = SweepConfig {
        n_topologies: 4,
        seed: 9,
        parallelism,
        ..Default::default()
    };
    parallel_map(&sweep, |i| {
        let mut sim = storm_sim(100 + i as u64);
        sim.trace.enable();
        let m = sim.run();
        (sim.trace.to_jsonl(), m.csv_row())
    })
}

/// Same seed ⇒ byte-identical trace streams across `--threads 1` and
/// `--threads 4`. Sequence numbers are per-`Trace` (each sim owns its
/// stream), so index-ordered collection is already the normalized form.
#[test]
fn trace_streams_identical_across_thread_counts() {
    let serial = sweep_traces(1);
    let threaded = sweep_traces(4);
    assert_eq!(serial.len(), threaded.len());
    for (i, (s, t)) in serial.iter().zip(&threaded).enumerate() {
        assert!(!s.0.is_empty(), "sim {i} traced nothing");
        assert_eq!(s.0, t.0, "sim {i}: trace stream differs with threads");
        assert_eq!(s.1, t.1, "sim {i}: CSV row differs with threads");
    }
}

/// Attaching sinks (ring buffer + JSON-lines file), or not tracing at all,
/// never changes simulation results: CSV rows, latency series, and
/// per-client bits are byte-identical.
#[test]
fn sinks_do_not_perturb_simulation_results() {
    let baseline = {
        let mut sim = storm_sim(5);
        let m = sim.run();
        (
            m.csv_row(),
            m.latencies_s.clone(),
            m.per_client_bits.clone(),
        )
    };
    let path = std::env::temp_dir().join("jmb_obs_sink_test.jsonl");
    let observed = {
        let mut sim = storm_sim(5);
        sim.trace.enable();
        sim.trace.attach_sink(RingBufferSink::new(64));
        sim.trace
            .attach_sink(JsonLinesSink::create(&path).expect("sink file"));
        let m = sim.run();
        sim.trace.detach_sinks();
        (
            m.csv_row(),
            m.latencies_s.clone(),
            m.per_client_bits.clone(),
        )
    };
    let _ = std::fs::remove_file(&path);
    assert_eq!(baseline, observed, "observation changed the simulation");
}

/// Bugfix guard: `FastBackend` trace timestamps are monotone non-decreasing
/// within a run — batches are stamped on the frame timeline, which only
/// moves forward — and so are sequence numbers. Checked under fault
/// injection, where every emission site is exercised.
#[test]
fn fastbackend_trace_times_are_monotone() {
    let mut sim = storm_sim(21);
    sim.trace.enable();
    sim.backend_mut().net_mut().trace.enable();
    sim.run();
    sim.trace
        .query()
        .assert_monotone_time()
        .assert_monotone_seq();
    let net = sim.backend_mut().net_mut();
    assert!(
        !net.trace.events().is_empty(),
        "storm produced no FastNet events"
    );
    net.trace
        .query()
        .assert_monotone_time()
        .assert_monotone_seq();
}

/// JSON-lines round trip: events streamed to a file replay identically
/// through `read_jsonl`, and the replayed stream answers the same queries.
#[test]
fn jsonl_dump_replays_losslessly() {
    let path = std::env::temp_dir().join("jmb_obs_replay_test.jsonl");
    let mut sim = storm_sim(13);
    sim.trace.enable();
    sim.trace
        .attach_sink(JsonLinesSink::create(&path).expect("sink file"));
    sim.run();
    sim.trace.detach_sinks(); // flushes
    let replayed = jmb::sim::read_jsonl(&path).expect("replay");
    let _ = std::fs::remove_file(&path);
    let live = sim.trace.events();
    assert_eq!(replayed.len(), live.len());
    assert_eq!(&replayed[..], live, "replayed events differ from live ones");
    let q = TraceQuery::new(&replayed)
        .assert_monotone_time()
        .assert_monotone_seq();
    assert_eq!(
        q.kind("SyncMissed").count(),
        sim.trace.sync_missed_count(),
        "replayed query disagrees with live counters"
    );
}

/// Merged metrics from a threaded sweep equal the serial merge — the
/// registry-backed counters pool deterministically (order-independent
/// integer sums, index-ordered f64 accumulation).
#[test]
fn merged_metrics_deterministic_across_thread_counts() {
    let run = |parallelism: usize| {
        let sweep = SweepConfig {
            n_topologies: 4,
            seed: 3,
            parallelism,
            ..Default::default()
        };
        let ms = parallel_map(&sweep, |i| storm_sim(200 + i as u64).run());
        TrafficMetrics::merge(&ms).csv_row()
    };
    assert_eq!(run(1), run(4), "merged CSV row depends on thread count");
}
