//! Paper-fidelity regression suite: quick-mode statistical acceptance
//! bands against the headline claims of "JMB: scaling wireless capacity
//! with user demands" (SIGCOMM 2012).
//!
//! Each test cites the paper section/figure it checks and asserts a
//! *band*, not an exact value: quick-mode sweeps are small, so the bands
//! are wide enough for sampling noise yet tight enough that a broken
//! pipeline (lost array gain, phase-sync regression, scaling collapse)
//! fails loudly.
//!
//! The master seed comes from `JMB_SEED` (default 1); CI runs the suite on
//! several seeds to guard against a band that only holds on one draw.
//! `JMB_SYNC` (a strategy token: `jmb-lead-slave`, `airsync-pilot`,
//! `reciprocity-implicit`; default `jmb-lead-slave`) swaps the
//! synchronization backend the phase-sensitive tests drive. The paper's
//! lead/slave resync must hit the paper's own numbers; the rival
//! backends are held to their *documented envelopes* (wider bands that
//! still rule out collapse) — see the `sync_shootout` bench for where
//! those envelopes come from.

use jmb::channel::SnrBand;
use jmb::core::experiment::{
    aggregate_scaling, misalignment_samples_with, throughput_scaling, SweepConfig,
};
use jmb::core::fastnet::{FastConfig, FastNet};
use jmb::core::sync::SyncStrategyId;

/// Master seed: `JMB_SEED` env var, default 1.
fn master_seed() -> u64 {
    std::env::var("JMB_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Synchronization backend under test: `JMB_SYNC` env var (strategy
/// token), default the paper's lead/slave resync.
fn sync_strategy() -> SyncStrategyId {
    match std::env::var("JMB_SYNC") {
        Ok(tok) => SyncStrategyId::from_token(&tok).unwrap_or_else(|| {
            let known: Vec<&str> = SyncStrategyId::ALL.iter().map(|s| s.token()).collect();
            panic!(
                "JMB_SYNC=`{tok}` is not a strategy token ({})",
                known.join("|")
            )
        }),
        Err(_) => SyncStrategyId::default(),
    }
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// §11.4 / Fig. 9: "JMB's throughput increases linearly with the number of
/// transmitting APs." Quick-mode check: per-AP throughput (total / n) at
/// 4, 6, and 8 APs stays within a band of the 2-AP per-AP throughput, so
/// the scaling curve is a line through the origin within tolerance, not a
/// saturating or collapsing one. (This pipeline exercises the paper's
/// lead/slave path regardless of `JMB_SYNC` — scaling under rival
/// backends is the `sync_shootout` bench's job.)
#[test]
fn fig9_throughput_scales_linearly_in_aps() {
    let counts = [2usize, 4, 6, 8];
    let sweep = SweepConfig {
        n_topologies: 4,
        seed: master_seed(),
        ..Default::default()
    };
    let runs = throughput_scaling(&[SnrBand::High], &counts, &sweep, true);
    let agg = aggregate_scaling(&runs);
    assert_eq!(agg.len(), counts.len());
    let per_ap_ref = agg[0].jmb_mean / agg[0].n_aps as f64;
    assert!(per_ap_ref > 0.0, "Fig. 9: 2-AP throughput vanished");
    for p in &agg[1..] {
        let per_ap = p.jmb_mean / p.n_aps as f64;
        let ratio = per_ap / per_ap_ref;
        assert!(
            (0.5..=1.5).contains(&ratio),
            "Fig. 9 (§11.4): per-AP throughput at {} APs is {:.2}× the 2-AP \
             value ({:.1} vs {:.1} Mb/s per AP) — scaling is no longer linear \
             within the acceptance band",
            p.n_aps,
            ratio,
            per_ap / 1e6,
            per_ap_ref / 1e6
        );
    }
    // And the totals must actually grow: 8 APs beat 2 APs by at least 2×.
    assert!(
        agg[3].jmb_mean > 2.0 * agg[0].jmb_mean,
        "Fig. 9 (§11.4): total throughput failed to grow with APs \
         ({:.1} Mb/s at 8 APs vs {:.1} Mb/s at 2)",
        agg[3].jmb_mean / 1e6,
        agg[0].jmb_mean / 1e6
    );
}

/// §11.2 / Fig. 7: the phase misalignment JMB achieves is small — paper
/// measures a median of 0.017 rad and a 95th percentile of 0.05 rad.
/// Quick-mode band: median within 4× of the paper's median and the 95th
/// percentile under 3× the paper's value.
///
/// Per-strategy bands: the lead/slave resync (and AirSync pilot tracking,
/// whose 2 ms cadence matches the probe's round spacing) must sit in the
/// paper's band; calibrated reciprocity rides uncontrolled uplink frames,
/// so its documented envelope is a 0.8 rad median and a 2.5 rad 95th
/// percentile — degraded, never collapsed.
#[test]
fn fig7_misalignment_matches_paper_band() {
    let strategy = sync_strategy();
    let samples = misalignment_samples_with(4, 15, master_seed(), strategy).expect("probe");
    assert!(!samples.is_empty());
    let mut sorted = samples.clone();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    let p95 = sorted[(sorted.len() - 1) * 95 / 100];
    let (median_cap, p95_cap) = match strategy {
        SyncStrategyId::JmbLeadSlave | SyncStrategyId::AirSyncPilot => (4.0 * 0.017, 3.0 * 0.05),
        SyncStrategyId::ReciprocityImplicit => (0.8, 2.5),
    };
    assert!(
        median <= median_cap,
        "Fig. 7 (§11.2): {} median misalignment {median:.4} rad is outside \
         its band (cap {median_cap} rad)",
        strategy.token()
    );
    assert!(
        p95 <= p95_cap,
        "Fig. 7 (§11.2): {} 95th-pct misalignment {p95:.4} rad is outside \
         its band (cap {p95_cap} rad)",
        strategy.token()
    );
}

/// §11.3 / Fig. 11: joint (diversity) transmission from N phase-synced APs
/// beams coherently at one client, so its SNR must sit in a window above
/// the single-designated-AP 802.11 baseline: positive gain, and no more
/// than the ideal coherent array gain `20·log10(N)` dB plus slack for the
/// topology draw (per-AP link strengths differ).
///
/// Reciprocity's noisier implicit estimates cost coherence, so its
/// envelope only requires the combiner not to turn destructive (gain
/// above −3 dB); the upper window is shared.
#[test]
fn fig11_joint_snr_within_array_gain_window_of_baseline() {
    let strategy = sync_strategy();
    let n_aps = 4usize;
    let mut cfg = FastConfig::default_with(n_aps, 1, vec![25.0], master_seed());
    cfg.sync = strategy;
    let mut net = FastNet::new(cfg).expect("fastnet");
    net.run_measurement().expect("measurement");
    let baseline = mean(&net.baseline_snr_db(0));
    let joint = mean(&net.diversity_snr_db(0).expect("diversity probe"));
    let gain_db = joint - baseline;
    let ideal_db = 20.0 * (n_aps as f64).log10(); // ≈ 12 dB for N = 4
    let floor_db = match strategy {
        SyncStrategyId::JmbLeadSlave | SyncStrategyId::AirSyncPilot => 1.0,
        SyncStrategyId::ReciprocityImplicit => -3.0,
    };
    assert!(
        gain_db > floor_db,
        "Fig. 11 (§11.3): {} joint SNR {joint:.1} dB vs single-AP baseline \
         {baseline:.1} dB — gain {gain_db:.1} dB under the {floor_db} dB floor",
        strategy.token()
    );
    assert!(
        gain_db <= ideal_db + 6.0,
        "Fig. 11 (§11.3): array gain {gain_db:.1} dB exceeds the coherent \
         limit {ideal_db:.1} dB (+6 dB slack) — the baseline or the \
         combiner is miscalibrated"
    );
}

/// §8: JMB's distributed phase synchronisation keeps every slave's error
/// small; the system's own error budget (the `FastNet` default under which
/// a desynced slave is excluded) is 0.35 rad. Across a 10-run seed sweep,
/// each run's *median* error and the sweep's pooled 95th percentile must
/// stay inside that budget (single tail samples may spike on an unlucky
/// noise draw — the budget is a statistical envelope, not a hard max).
///
/// The 0.35 rad budget binds the lead/slave resync and AirSync. The
/// reciprocity envelope is wider on every axis — its 25 ms refresh
/// cadence cannot hold phase across a 20 ms probe window, so an unlucky
/// CFO draw dominates a whole run: per-run median under 2.0 rad, pooled
/// median under 0.6 rad, pooled 95th percentile under 2.5 rad (measured
/// headroom ≈ 2× over seeds 1–3; see the `sync_shootout` bench).
#[test]
fn phase_sync_error_stays_inside_budget_across_seed_sweep() {
    let strategy = sync_strategy();
    let (run_median_cap, pooled_median_cap, p95_cap) = match strategy {
        SyncStrategyId::JmbLeadSlave | SyncStrategyId::AirSyncPilot => (0.35, 0.35, 0.35),
        SyncStrategyId::ReciprocityImplicit => (2.0, 0.6, 2.5),
    };
    let base = master_seed();
    let mut pooled = Vec::new();
    for i in 0..10u64 {
        let seed = base.wrapping_add(1000 * i);
        let samples = misalignment_samples_with(1, 10, seed, strategy).expect("probe");
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        assert!(
            median < run_median_cap,
            "§8: {} run with seed {seed} has median phase error {median:.4} \
             rad — outside its {run_median_cap} rad budget",
            strategy.token()
        );
        pooled.extend(samples);
    }
    pooled.sort_by(f64::total_cmp);
    let pooled_median = pooled[pooled.len() / 2];
    let p95 = pooled[(pooled.len() - 1) * 95 / 100];
    assert!(
        pooled_median < pooled_median_cap,
        "§8: {} pooled median phase error {pooled_median:.4} rad over the \
         10-run sweep — outside its {pooled_median_cap} rad budget",
        strategy.token()
    );
    assert!(
        p95 < p95_cap,
        "§8: {} pooled 95th-pct phase error {p95:.4} rad over the 10-run \
         sweep — outside its {p95_cap} rad budget",
        strategy.token()
    );
}
