//! Control-plane robustness, end to end: lost measurement frames trigger
//! capped-exponential-backoff re-measurement (asserted from trace events),
//! sync-header loss degrades goodput gracefully instead of cliffing, and a
//! total sync-loss storm degrades the affected slave out of the array and
//! restores it when the storm passes.

use jmb::core::fastnet::FastConfig;
use jmb::prelude::*;
use jmb::sim::{EventKind, FaultConfig, FaultSchedule};
use jmb::traffic::TrafficMetrics;

/// 4 APs / 4 clients at saturating load (2500 pps × 1500 B per client)
/// with the given control-fault schedule installed after the clean
/// initial measurement.
fn faulted_sim(faults: FaultSchedule, seed: u64) -> TrafficSim<FastBackend> {
    let mut backend =
        FastBackend::new(FastConfig::default_with(4, 4, vec![28.0; 4], seed)).unwrap();
    backend.net_mut().set_fault_schedule(faults);
    let loads = vec![ClientLoad::poisson(2500.0, 1500); 4];
    let mut cfg = TrafficConfig::default_with(loads, seed);
    cfg.duration_s = 0.2;
    cfg.drain_timeout_s = 0.1;
    TrafficSim::new(cfg, backend).unwrap()
}

fn sync_loss(p: f64) -> FaultConfig {
    FaultConfig::builder().sync_loss_chance(p).build().unwrap()
}

fn meas_loss(p: f64) -> FaultConfig {
    FaultConfig::builder().meas_loss_chance(p).build().unwrap()
}

#[test]
fn lost_measurement_triggers_backoff_remeasure() {
    // Every measurement frame is lost: once the CSI goes stale the backend
    // must retry on a capped exponential backoff, and keep serving traffic
    // on the stale precoder throughout.
    let mut sim = faulted_sim(FaultSchedule::constant(meas_loss(1.0)), 11);
    sim.trace.enable();
    let m = sim.run();
    assert!(m.delivered > 0, "lost measurements must not stall traffic");
    assert!(m.remeasure_failed >= 3, "failures: {}", m.remeasure_failed);
    assert_eq!(m.remeasure_ok, 0);
    assert!(m.csi_stale_events > 0);

    // Failed attempts count up monotonically — the tracker never resets
    // without a success.
    let attempts: Vec<u32> = sim
        .trace
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::RemeasureFailed { attempt } => Some(attempt),
            _ => None,
        })
        .collect();
    let expected: Vec<u32> = (1..=attempts.len() as u32).collect();
    assert_eq!(attempts, expected);

    // Scheduled retry delays grow exponentially up to the cap.
    let delays: Vec<f64> = sim
        .trace
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::RemeasureScheduled { at, .. } => Some(at - e.t),
            _ => None,
        })
        .collect();
    assert!(delays.len() >= 3, "delays: {delays:?}");
    assert!(delays[0] < 5e-3, "first backoff small: {delays:?}");
    assert!(
        delays.windows(2).all(|w| w[1] >= w[0] - 1e-3),
        "non-decreasing: {delays:?}"
    );
    assert!(
        *delays.last().unwrap() > 5.0 * delays[0],
        "exponential growth: {delays:?}"
    );
    assert!(
        delays.iter().all(|&d| d <= 66e-3),
        "capped at 64 ms: {delays:?}"
    );
}

#[test]
fn measurement_storm_passes_and_remeasure_recovers() {
    // Measurement frames are lost only during [20 ms, 100 ms]: the backoff
    // retries fail inside the window, then the first retry after it
    // succeeds and refreshes the CSI.
    let storm = FaultSchedule::none()
        .with_window(0.02, 0.1, meas_loss(1.0))
        .unwrap();
    let mut sim = faulted_sim(storm, 12);
    sim.trace.enable();
    let m = sim.run();
    assert!(m.remeasure_failed >= 1, "failures: {}", m.remeasure_failed);
    assert!(m.remeasure_ok >= 1, "recoveries: {}", m.remeasure_ok);
    assert!(m.delivered > 0);
    // The failure happens before the recovery.
    let t_fail = sim
        .trace
        .query()
        .kind("RemeasureFailed")
        .first()
        .map(|e| e.t);
    assert!(t_fail.is_some_and(|t| t < 0.12), "fail time {t_fail:?}");
}

#[test]
fn ten_percent_sync_loss_stays_within_25_percent_of_clean() {
    // The headline acceptance bound: at 10% sync-header loss, saturated
    // goodput stays within 25% of fault-free. Pooled over 3 topologies so
    // ZF-conditioning noise doesn't decide the comparison.
    let pooled = |p: f64| {
        let ms: Vec<TrafficMetrics> = (0..3)
            .map(|s| faulted_sim(FaultSchedule::constant(sync_loss(p)), 60 + s).run())
            .collect();
        TrafficMetrics::merge(&ms)
    };
    let clean = pooled(0.0);
    let lossy = pooled(0.1);
    assert_eq!(clean.sync_misses, 0);
    assert!(lossy.sync_misses > 0);
    assert!(
        lossy.goodput_bps() >= 0.75 * clean.goodput_bps(),
        "goodput cliff: {:.1} vs {:.1} Mb/s",
        lossy.goodput_bps() / 1e6,
        clean.goodput_bps() / 1e6
    );
}

#[test]
fn sync_storm_degrades_slave_then_restores_it() {
    // Slave 1 misses every header during the middle of the run: after K
    // consecutive misses it is degraded out of joint batches, and the
    // first header it hears after the storm restores it.
    let storm = FaultSchedule::none()
        .with_window(
            0.05,
            0.12,
            FaultConfig::builder()
                .per_slave_sync_loss(1, 1.0)
                .build()
                .unwrap(),
        )
        .unwrap();
    let mut sim = faulted_sim(storm, 13);
    sim.trace.enable();
    let m = sim.run();
    assert!(m.delivered > 0, "storm must not stall traffic");
    assert!(m.aps_degraded >= 1, "degraded: {}", m.aps_degraded);
    assert!(m.aps_restored >= 1, "restored: {}", m.aps_restored);
    let t_degraded = sim
        .trace
        .query()
        .kind("ApDegraded")
        .ap(1)
        .first()
        .map(|e| e.t);
    let t_restored = sim
        .trace
        .query()
        .kind("ApRestored")
        .ap(1)
        .first()
        .map(|e| e.t);
    let (td, tr) = (t_degraded.unwrap(), t_restored.unwrap());
    assert!(td < tr, "degraded at {td}, restored at {tr}");
    assert!(td >= 0.05, "degradation inside the storm window: {td}");
}

#[test]
fn faulted_runs_are_deterministic() {
    let run = || {
        let schedule = FaultSchedule::constant(
            FaultConfig::builder()
                .sync_loss_chance(0.1)
                .meas_loss_chance(0.3)
                .build()
                .unwrap(),
        );
        let m = faulted_sim(schedule, 14).run();
        (m.csv_row(), m.sync_misses, m.remeasure_failed)
    };
    assert_eq!(run(), run());
}
