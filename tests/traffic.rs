//! End-to-end tests of the traffic subsystem over real PHY backends: AP
//! scaling under load, failover, payload-corruption faults surfacing as
//! CRC-driven retransmissions, and cross-run determinism.

use jmb::core::fastnet::FastConfig;
use jmb::prelude::*;
use jmb::sim::FaultConfig;
use jmb::traffic::TrafficMetrics;

fn fast_sim(
    n_aps: usize,
    rate_pps: f64,
    outages: Vec<ApOutage>,
    seed: u64,
) -> TrafficSim<FastBackend> {
    let backend = FastBackend::new(FastConfig::default_with(
        n_aps,
        n_aps,
        vec![28.0; n_aps],
        seed,
    ))
    .unwrap();
    let loads = vec![ClientLoad::poisson(rate_pps, 1500); n_aps];
    let mut cfg = TrafficConfig::default_with(loads, seed);
    cfg.duration_s = 0.2;
    cfg.drain_timeout_s = 0.1;
    cfg.outages = outages;
    TrafficSim::new(cfg, backend).unwrap()
}

#[test]
fn goodput_scales_with_ap_count() {
    // Saturating load: more APs ⇒ more concurrent streams ⇒ more goodput.
    let g = |n| {
        let ms: Vec<TrafficMetrics> = (0..3)
            .map(|s| fast_sim(n, 2500.0, Vec::new(), 40 + s).run())
            .collect();
        TrafficMetrics::merge(&ms).goodput_bps()
    };
    let (g2, g6) = (g(2), g(6));
    assert!(
        g6 > 1.5 * g2,
        "6 APs ({:.1} Mb/s) should beat 2 APs ({:.1} Mb/s)",
        g6 / 1e6,
        g2 / 1e6
    );
}

#[test]
fn light_load_is_low_latency_and_fair() {
    let m = fast_sim(4, 200.0, Vec::new(), 7).run();
    assert!(m.delivery_ratio() > 0.95, "ratio {}", m.delivery_ratio());
    assert!(m.median_latency_s() < 5e-3, "{}", m.median_latency_s());
    assert!(m.jain_fairness() > 0.8, "{}", m.jain_fairness());
}

#[test]
fn lead_failover_degrades_but_does_not_stall() {
    let outage = ApOutage {
        ap: 0,
        down_at_s: 0.07,
        up_at_s: 0.14,
    };
    let mut sim = fast_sim(4, 800.0, vec![outage], 11);
    sim.trace.enable();
    let m = sim.run();
    assert!(m.delivery_ratio() > 0.9, "ratio {}", m.delivery_ratio());
    // Deliveries continue inside the outage window: some timeline bin
    // overlapping (0.07, 0.14) carries bits.
    let in_window: f64 = m
        .timeline
        .iter()
        .filter(|b| b.t_s >= 0.07 && b.t_s < 0.14)
        .map(|b| b.delivered_bits)
        .sum();
    assert!(in_window > 0.0, "queue stalled during the outage");
    // And the dead AP is never elected lead while down.
    sim.trace.query().assert_monotone_time();
    for e in sim
        .trace
        .query()
        .kind("LeadElected")
        .between(0.07, 0.14)
        .events()
    {
        if let jmb::sim::EventKind::LeadElected { ap } = e.kind {
            assert_ne!(ap, 0, "dead AP elected lead at t={}", e.t);
        }
    }
}

#[test]
fn corruption_faults_surface_as_crc_retransmissions() {
    // Sample-level PHY with payload corruption: the preamble and SIGNAL
    // survive (sync still locks), the CRC rejects the frame, no ACK comes
    // back, and the MAC retransmits.
    let backend = SampleBackend::new(NetConfig::default_with(2, 2, 22.0, 3)).unwrap();
    let loads = vec![ClientLoad::poisson(60.0, 200); 2];
    let mut cfg = TrafficConfig::default_with(loads, 3);
    cfg.duration_s = 0.05;
    cfg.drain_timeout_s = 0.05;
    let mut sim = TrafficSim::new(cfg, backend).unwrap();
    sim.backend_mut()
        .net_mut()
        .medium_mut()
        .set_fault(FaultConfig::with_corrupt_chance(0.6));
    sim.backend_mut().net_mut().medium_mut().trace.enable();
    let m = sim.run();
    let medium = sim.backend_mut().net_mut().medium_mut();
    assert!(m.generated > 0);
    assert!(
        medium.trace.corrupt_count() > 0,
        "no corruption events fired"
    );
    assert!(
        m.retries > 0,
        "corruption should cause CRC failures and retransmissions"
    );
    // Clean frames still get through.
    assert!(m.delivered > 0, "nothing delivered under 0.6 corruption");
}

#[test]
fn sample_backend_delivers_without_faults() {
    let backend = SampleBackend::new(NetConfig::default_with(2, 2, 22.0, 5)).unwrap();
    let loads = vec![ClientLoad::poisson(60.0, 200); 2];
    let mut cfg = TrafficConfig::default_with(loads, 5);
    cfg.duration_s = 0.05;
    cfg.drain_timeout_s = 0.05;
    let m = TrafficSim::new(cfg, backend).unwrap().run();
    assert!(m.generated > 0);
    assert_eq!(m.delivered, m.generated, "clean PHY must deliver all");
    assert_eq!(m.dropped, 0);
}

#[test]
fn metrics_are_deterministic_across_runs() {
    let run = || {
        let m = fast_sim(3, 1200.0, Vec::new(), 17).run();
        (m.csv_row(), m.latencies_s, m.per_client_bits)
    };
    assert_eq!(run(), run());
}
