//! Vendored stand-in for the subset of the `criterion` 0.5 API that the jmb
//! workspace uses.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the benchmarking surface its `benches/` need: [`Criterion`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is plain
//! wall-clock: warm-up, then timed samples until the configured measurement
//! window elapses, reporting the median ns/iteration to stdout. No plots,
//! no statistics files — the workspace's machine-readable numbers come from
//! the `perf_baseline` binary instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. All variants behave the same
/// here (setup is always excluded from the timed region).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured batch.
    PerIteration,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Collected (total_duration, iterations) samples.
    samples: Vec<(Duration, u64)>,
}

impl Bencher<'_> {
    /// Times `routine`, running it in growing batches until the measurement
    /// window is filled.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: discover a batch size that takes ~1ms so timer overhead
        // stays negligible.
        let mut batch: u64 = 1;
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt < Duration::from_millis(1) {
                batch = batch.saturating_mul(2);
            } else if Instant::now() >= warm_deadline {
                break;
            }
        }
        let deadline = Instant::now() + self.config.measurement_time;
        while self.samples.len() < self.config.sample_size || Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push((t0.elapsed(), batch));
            if self.samples.len() >= self.config.sample_size && Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            let input = setup();
            black_box(routine(input));
        }
        let deadline = Instant::now() + self.config.measurement_time;
        while self.samples.len() < self.config.sample_size || Instant::now() < deadline {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            let dt = t0.elapsed();
            black_box(out);
            self.samples.push((dt, 1));
            if self.samples.len() >= self.config.sample_size && Instant::now() >= deadline {
                break;
            }
        }
    }

    fn median_ns_per_iter(&self) -> f64 {
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|(dt, n)| dt.as_nanos() as f64 / *n as f64)
            .collect();
        if per_iter.is_empty() {
            return f64::NAN;
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        per_iter[per_iter.len() / 2]
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

/// Benchmark registry and configuration, mirroring criterion's builder.
#[derive(Debug, Clone)]
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            config: Config {
                sample_size: 50,
                measurement_time: Duration::from_secs(2),
                warm_up_time: Duration::from_millis(500),
            },
        }
    }
}

impl Criterion {
    /// Sets the minimum number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Sets the warm-up window per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Runs one named benchmark and prints its median time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            config: &self.config,
            samples: Vec::new(),
        };
        f(&mut b);
        let ns = b.median_ns_per_iter();
        let (value, unit) = humanize_ns(ns);
        println!(
            "{name:<40} {value:>10.3} {unit}/iter   ({} samples)",
            b.samples.len()
        );
        self
    }
}

fn humanize_ns(ns: f64) -> (f64, &'static str) {
    if ns >= 1e9 {
        (ns / 1e9, "s ")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    }
}

/// Declares a benchmark group: a config expression plus target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(10));
        let mut acc = 0u64;
        c.bench_function("smoke_iter", |b| {
            b.iter(|| {
                acc = acc.wrapping_add(1);
                black_box(acc)
            })
        });
        c.bench_function("smoke_batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn humanize_picks_sane_units() {
        assert_eq!(humanize_ns(500.0).1, "ns");
        assert_eq!(humanize_ns(5_000.0).1, "µs");
        assert_eq!(humanize_ns(5_000_000.0).1, "ms");
        assert_eq!(humanize_ns(5e9).1, "s ");
    }
}
