//! Vendored stand-in for the subset of the `proptest` 1.x API that the jmb
//! workspace uses.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the surface its property tests need: the [`Strategy`] trait with
//! `prop_map`, range / tuple / `collection::vec` / [`any`] strategies, the
//! [`proptest!`] macro (including `#![proptest_config(..)]`), and the
//! `prop_assert*` macros. Unlike upstream there is no shrinking: a failing
//! case reports its case index and message, and reruns are deterministic
//! because the case stream is seeded from the test's module path and name.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic case generation.

    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The generator driving a test's case stream (SplitMix64, seeded from
    /// the test's fully qualified name so every run replays the same cases).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from a test name (FNV-1a over the bytes).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in name.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.next_f64() as $t
                }
            }
        )*};
    }
    float_ranges!(f64, f32);

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!(
        (A 0, B 1),
        (A 0, B 1, C 2),
        (A 0, B 1, C 2, D 3)
    );
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact `usize` or a `Range<usize>`.
    pub trait IntoLenRange {
        /// Draws a length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLenRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLenRange for Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy producing `Vec<S::Value>` with a random length.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Vectors of values drawn from `element`, with length drawn from `len`.
    pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoLenRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! The [`any`] strategy.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the type's whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over the whole domain of `T`.
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T` (`any::<u8>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Asserts a condition inside a `proptest!` body; on failure the case
/// returns an error instead of panicking mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq failed: `{:?}` != `{:?}`",
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_ne failed: both `{:?}`",
                left
            ));
        }
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (@run($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(
                ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name)),
            );
            $(let $arg = $strat;)*
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), ::std::string::String> = {
                    $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);)*
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                };
                if let ::std::result::Result::Err(msg) = outcome {
                    ::std::panic!(
                        "proptest {} failed at case {}/{}: {}",
                        ::std::stringify!($name),
                        case,
                        config.cases,
                        msg
                    );
                }
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @run(<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        );
    };
}

pub mod prelude {
    //! One-stop imports for property tests.

    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! Mirror of the crate root for `prop::collection::vec` paths.
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in -1.0..1.0f64, b in 1u8..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!((1..=4).contains(&b));
        }

        #[test]
        fn vec_lengths_respect_spec(
            fixed in prop::collection::vec(any::<u8>(), 7),
            ranged in prop::collection::vec(0u8..2, 2..5),
        ) {
            prop_assert_eq!(fixed.len(), 7);
            prop_assert!(ranged.len() >= 2 && ranged.len() < 5);
            prop_assert!(ranged.iter().all(|&b| b < 2));
        }

        #[test]
        fn prop_map_applies(v in (0u8..10, 0u8..10).prop_map(|(a, b)| a as u16 + b as u16)) {
            prop_assert!(v < 20, "mapped value {}", v);
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("mod::t1");
        let mut b = crate::test_runner::TestRng::from_name("mod::t1");
        let mut c = crate::test_runner::TestRng::from_name("mod::t2");
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}
