//! Vendored stand-in for the subset of the `rand` 0.8 API that the jmb
//! workspace uses.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the small surface it needs: [`RngCore`], [`Rng`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`]. The generator behind `StdRng` is xoshiro256++
//! seeded through SplitMix64 — deterministic across platforms, which is the
//! property the simulations actually rely on (the upstream `StdRng` makes
//! no cross-version stream guarantee either, so no caller may depend on the
//! exact stream).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

pub mod distributions {
    //! Sampling distributions (the `Standard` subset).

    use crate::RngCore;

    /// Maps raw generator output to values of `T`.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform over a type's natural domain
    /// (`[0, 1)` for floats, the full range for integers).
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 high bits → uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_standard {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub mod uniform {
        //! Range sampling used by [`crate::Rng::gen_range`].

        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// A range that [`crate::Rng::gen_range`] can sample from.
        pub trait SampleRange<T> {
            /// Samples one value uniformly from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let v = (rng.next_u64() as u128) % span;
                        (self.start as i128 + v as i128) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "gen_range: empty range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let v = (rng.next_u64() as u128) % span;
                        (lo as i128 + v as i128) as $t
                    }
                }
            )*};
        }
        int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! float_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let u: f64 = crate::distributions::Distribution::<f64>::sample(
                            &crate::distributions::Standard,
                            rng,
                        );
                        self.start + (self.end - self.start) * u as $t
                    }
                }
            )*};
        }
        float_range!(f64, f32);
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use crate::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman/Vigna),
    /// seeded via SplitMix64. Small state, fast, excellent statistical
    /// quality for simulation; **not** cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice shuffling and choosing.

    use crate::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly chooses one element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_is_unit_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5..17usize);
            assert!((5..17).contains(&v));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(0..=4u8);
            assert!(i <= 4);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn choose_covers_all() {
        let mut rng = StdRng::seed_from_u64(11);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
